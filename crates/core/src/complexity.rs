//! Memory-controller complexity model (Table IV and §VI-C).
//!
//! The paper argues RoMe simplifies five components of the MC: bank state,
//! timing parameters, the number of bank FSMs, the request-queue size, and
//! the scheduling algorithm. This module captures those counts for both
//! controllers and provides the structural inputs (CAM bits, FSM flops,
//! comparator counts) the area model in `rome-energy` consumes.

use serde::{Deserialize, Serialize};

use rome_hbm::bank::BankState;
use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;

use crate::timing::RomeTimingParams;

/// The scheduling dimensions a controller must reason about.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulingDimensions {
    /// Whether row-buffer locality must be tracked and exploited.
    pub row_buffer_locality: bool,
    /// Whether the scheduler interleaves across bank groups.
    pub bank_group_interleaving: bool,
    /// Whether the scheduler interleaves across pseudo channels.
    pub pseudo_channel_interleaving: bool,
    /// Whether the scheduler interleaves across (virtual) banks.
    pub bank_interleaving: bool,
    /// Whether a page policy must be selected/maintained.
    pub page_policy: bool,
}

impl SchedulingDimensions {
    /// Number of active scheduling concerns.
    pub fn count(&self) -> usize {
        [
            self.row_buffer_locality,
            self.bank_group_interleaving,
            self.pseudo_channel_interleaving,
            self.bank_interleaving,
            self.page_policy,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// The Table IV description of one memory controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McComplexity {
    /// Human-readable name.
    pub name: String,
    /// Number of timing parameters the scheduler checks.
    pub timing_parameters: usize,
    /// Number of bank FSM instances.
    pub bank_fsms: usize,
    /// Number of states each bank FSM distinguishes.
    pub bank_states: usize,
    /// Request-queue entries required to reach peak bandwidth.
    pub queue_entries_for_peak: usize,
    /// Request-queue entries actually provisioned.
    pub queue_entries_provisioned: usize,
    /// The scheduling dimensions the controller handles.
    pub scheduling: SchedulingDimensions,
    /// Address bits held per queue entry (for CAM sizing).
    pub address_bits_per_entry: usize,
}

impl McComplexity {
    /// The conventional HBM4 controller of the paper's baseline.
    pub fn conventional(org: &Organization) -> Self {
        McComplexity {
            name: "Conventional HBM4 MC".to_string(),
            timing_parameters: TimingParams::conventional_parameter_count(),
            // One FSM per bank of one pseudo channel (the paper's Table IV:
            // "# of total banks per PC" = 64 for HBM4).
            bank_fsms: org.banks_per_pseudo_channel() as usize,
            bank_states: BankState::CONVENTIONAL_COUNT,
            queue_entries_for_peak: 45,
            queue_entries_provisioned: 64,
            scheduling: SchedulingDimensions {
                row_buffer_locality: true,
                bank_group_interleaving: true,
                pseudo_channel_interleaving: true,
                bank_interleaving: true,
                page_policy: true,
            },
            address_bits_per_entry: 34,
        }
    }

    /// The RoMe controller (§V-A).
    pub fn rome() -> Self {
        McComplexity {
            name: "RoMe MC".to_string(),
            timing_parameters: RomeTimingParams::parameter_count(),
            // Two active VBAs plus up to three refreshing VBAs.
            bank_fsms: 5,
            bank_states: 4,
            queue_entries_for_peak: 2,
            queue_entries_provisioned: 4,
            scheduling: SchedulingDimensions {
                row_buffer_locality: false,
                bank_group_interleaving: false,
                pseudo_channel_interleaving: false,
                bank_interleaving: true,
                page_policy: false,
            },
            address_bits_per_entry: 20,
        }
    }

    /// A rough gate-count proxy for the command-scheduling logic:
    /// CAM bits (entries × address bits, with a comparator per bit), plus
    /// per-FSM state flops and timing comparators. Used by the area model;
    /// the absolute value is arbitrary but the *ratio* between controllers is
    /// what §VI-C reports.
    pub fn scheduling_logic_units(&self) -> u64 {
        let cam_bits = (self.queue_entries_provisioned * self.address_bits_per_entry) as u64;
        // Each CAM bit needs storage + match logic (~2 units per bit).
        let cam = cam_bits * 2;
        // Each FSM: ceil(log2(states)) flops plus next-state logic per state.
        let state_bits = (usize::BITS - (self.bank_states - 1).leading_zeros()) as u64;
        let fsm = self.bank_fsms as u64 * (state_bits * 4 + self.bank_states as u64 * 3);
        // Each timing parameter needs a down-counter/comparator per FSM.
        let timing = (self.timing_parameters * self.bank_fsms) as u64 * 12;
        // Scheduler priority/selection logic grows with queue size × concerns.
        let select = (self.queue_entries_provisioned * self.scheduling.count().max(1)) as u64 * 8;
        // Fixed command/response sequencing logic present in any controller.
        const BASE_CONTROL_UNITS: u64 = 1000;
        BASE_CONTROL_UNITS + cam + fsm + timing + select
    }
}

/// Side-by-side comparison (the content of Table IV plus the area ratio).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityComparison {
    /// The conventional controller.
    pub conventional: McComplexity,
    /// The RoMe controller.
    pub rome: McComplexity,
}

impl ComplexityComparison {
    /// Build the comparison for the paper's HBM4 organization.
    pub fn paper_default() -> Self {
        ComplexityComparison {
            conventional: McComplexity::conventional(&Organization::hbm4()),
            rome: McComplexity::rome(),
        }
    }

    /// Ratio of RoMe scheduling-logic size to the conventional controller's
    /// (the paper reports ≈ 9.1 %).
    pub fn scheduling_area_ratio(&self) -> f64 {
        self.rome.scheduling_logic_units() as f64
            / self.conventional.scheduling_logic_units() as f64
    }

    /// Render the comparison as aligned table rows (label, conventional,
    /// RoMe) for the experiment harness.
    pub fn rows(&self) -> Vec<(String, String, String)> {
        vec![
            (
                "# of timing params.".to_string(),
                self.conventional.timing_parameters.to_string(),
                self.rome.timing_parameters.to_string(),
            ),
            (
                "# of bank FSMs".to_string(),
                self.conventional.bank_fsms.to_string(),
                self.rome.bank_fsms.to_string(),
            ),
            (
                "# of bank states".to_string(),
                self.conventional.bank_states.to_string(),
                self.rome.bank_states.to_string(),
            ),
            (
                "Request queue (peak / provisioned)".to_string(),
                format!(
                    "{} / {}",
                    self.conventional.queue_entries_for_peak,
                    self.conventional.queue_entries_provisioned
                ),
                format!(
                    "{} / {}",
                    self.rome.queue_entries_for_peak, self.rome.queue_entries_provisioned
                ),
            ),
            (
                "Page policy".to_string(),
                "open".to_string(),
                "none (always precharge)".to_string(),
            ),
            (
                "Scheduling dimensions".to_string(),
                self.conventional.scheduling.count().to_string(),
                self.rome.scheduling.count().to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_counts_match_the_paper() {
        let cmp = ComplexityComparison::paper_default();
        assert_eq!(cmp.conventional.timing_parameters, 15);
        assert_eq!(cmp.rome.timing_parameters, 10);
        assert_eq!(cmp.conventional.bank_states, 7);
        assert_eq!(cmp.rome.bank_states, 4);
        assert_eq!(cmp.conventional.bank_fsms, 64);
        assert_eq!(cmp.rome.bank_fsms, 5);
        assert_eq!(cmp.conventional.queue_entries_for_peak, 45);
        assert_eq!(cmp.rome.queue_entries_for_peak, 2);
        assert!(cmp.conventional.scheduling.page_policy);
        assert!(!cmp.rome.scheduling.page_policy);
    }

    #[test]
    fn rome_scheduling_logic_is_about_a_tenth_of_conventional() {
        let cmp = ComplexityComparison::paper_default();
        let ratio = cmp.scheduling_area_ratio();
        assert!(
            ratio > 0.04 && ratio < 0.15,
            "scheduling-area ratio {ratio:.3} outside the expected band around 9.1 %"
        );
    }

    #[test]
    fn scheduling_dimension_counts() {
        let cmp = ComplexityComparison::paper_default();
        assert_eq!(cmp.conventional.scheduling.count(), 5);
        assert_eq!(cmp.rome.scheduling.count(), 1);
    }

    #[test]
    fn rows_render_every_component() {
        let rows = ComplexityComparison::paper_default().rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|(label, _, _)| label.contains("timing")));
        assert!(rows.iter().any(|(label, _, _)| label.contains("queue")));
    }
}
