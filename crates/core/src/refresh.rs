//! RoMe refresh handling (§V-B).
//!
//! Under a VBA, a per-bank refresh to either constituent bank blocks the
//! whole VBA. RoMe therefore pools refreshes: the MC issues one refresh per
//! VBA every `2 × tREFIpb`, and the command generator forwards two `REFpb`
//! commands (one per bank) spaced `tRREFD` apart. The VBA then stalls for
//! `tRFCpb + tRREFD` instead of `2 × tRFCpb`.

use serde::{Deserialize, Serialize};

use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

/// Per-rank refresh bookkeeping for a RoMe channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VbaRefreshScheduler {
    interval: Cycle,
    next_due: Cycle,
    vbas_per_rank: u32,
    next_vba: u32,
    issued: u64,
}

impl VbaRefreshScheduler {
    /// Create a scheduler for one rank holding `vbas_per_rank` virtual banks.
    ///
    /// The issue interval is `2 × tREFIpb × (physical banks per VBA pair)`
    /// divided by the VBA count... in practice the paper states it directly:
    /// one pooled refresh every `2 × tREFIpb` rotating over the VBAs.
    pub fn new(timing: &TimingParams, vbas_per_rank: u32) -> Self {
        let interval = Cycle::from(timing.t_refi_pb) * 2;
        VbaRefreshScheduler {
            interval,
            next_due: interval,
            vbas_per_rank,
            next_vba: 0,
            issued: 0,
        }
    }

    /// The pooled refresh interval (`2 × tREFIpb`).
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Whether a pooled refresh is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_due
    }

    /// The cycle at which the next pooled refresh becomes due (the
    /// scheduler's next self-induced state change, used by the event-driven
    /// drivers to skip idle time).
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// Number of pooled refreshes issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Acknowledge that a pooled refresh was issued; returns the VBA index to
    /// refresh (round-robin).
    pub fn acknowledge(&mut self) -> u32 {
        let vba = self.next_vba;
        self.next_vba = (self.next_vba + 1) % self.vbas_per_rank.max(1);
        self.next_due += self.interval;
        self.issued += 1;
        vba
    }
}

/// Comparison of the VBA stall time per pooled refresh with and without the
/// §V-B optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshStallComparison {
    /// Stall if the two constituent banks were refreshed back-to-back at
    /// their own `tREFIpb` cadence: `2 × tRFCpb`.
    pub naive_stall_ns: Cycle,
    /// Stall under the pooled scheme: `tRFCpb + tRREFD`.
    pub pooled_stall_ns: Cycle,
}

impl RefreshStallComparison {
    /// Compute the comparison from the conventional timing.
    pub fn from_timing(timing: &TimingParams) -> Self {
        RefreshStallComparison {
            naive_stall_ns: 2 * Cycle::from(timing.t_rfc_pb),
            pooled_stall_ns: Cycle::from(timing.t_rfc_pb) + Cycle::from(timing.t_rrefd),
        }
    }

    /// Fractional reduction in stall time.
    pub fn reduction(&self) -> f64 {
        1.0 - self.pooled_stall_ns as f64 / self.naive_stall_ns as f64
    }

    /// Steady-state fraction of time a VBA is unavailable due to refresh
    /// under the pooled scheme, given the pooled interval.
    pub fn pooled_unavailability(&self, timing: &TimingParams, vbas_per_rank: u32) -> f64 {
        // Each VBA receives one pooled refresh every
        // vbas_per_rank × 2 × tREFIpb nanoseconds.
        let period = vbas_per_rank as f64 * 2.0 * timing.t_refi_pb as f64;
        self.pooled_stall_ns as f64 / period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_interval_is_twice_trefipb() {
        let t = TimingParams::hbm4();
        let s = VbaRefreshScheduler::new(&t, 8);
        assert_eq!(s.interval(), 2 * t.t_refi_pb as u64);
        assert!(!s.due(0));
        assert!(s.due(2 * t.t_refi_pb as u64));
    }

    #[test]
    fn rotation_covers_all_vbas() {
        let t = TimingParams::hbm4();
        let mut s = VbaRefreshScheduler::new(&t, 4);
        let order: Vec<u32> = (0..8).map(|_| s.acknowledge()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(s.issued(), 8);
    }

    #[test]
    fn pooled_stall_matches_paper_example() {
        let t = TimingParams::hbm4();
        let c = RefreshStallComparison::from_timing(&t);
        // Paper example: 2 × 280 ns naive vs 280 ns + 8 ns pooled.
        assert_eq!(c.naive_stall_ns, 560);
        assert_eq!(c.pooled_stall_ns, 288);
        assert!(c.reduction() > 0.45);
    }

    #[test]
    fn unavailability_is_small() {
        let t = TimingParams::hbm4();
        let c = RefreshStallComparison::from_timing(&t);
        let u = c.pooled_unavailability(&t, 8);
        assert!(u < 0.10, "unavailability {u}");
        assert!(u > 0.0);
    }
}
