//! # rome-core — the RoMe row-granularity memory interface
//!
//! This crate implements the paper's primary contribution (§IV–§V):
//!
//! * the **row-level command interface** — `RD_row` and `WR_row` replace the
//!   column-level `RD`/`WR`, and bank groups and pseudo channels disappear
//!   from the MC–DRAM interface ([`row_command`]);
//! * the **virtual bank (VBA)** organization and its design space: three ways
//!   of merging banks (Fig. 7 b/c/d) × two ways of merging pseudo channels
//!   (Fig. 8 a/b) ([`vba`]);
//! * the **command generator** placed on the HBM logic die, which expands
//!   each row-level command into a fixed, statically-timed sequence of
//!   conventional DRAM commands (Fig. 9) ([`generator`]);
//! * the **C/A-pin model**: how many pins a RoMe channel needs, how many the
//!   row-level interface frees, and how the freed pins fund four extra
//!   channels per cube (+12.5 % bandwidth) ([`pins`], [`channel_plan`]);
//! * the **RoMe memory controller** — three row-level commands, four bank
//!   states, five bank FSMs, a tiny request queue, and a scheduler that only
//!   interleaves across VBAs ([`controller`], [`timing`]);
//! * the RoMe **refresh optimization** (§V-B) ([`refresh`]);
//! * the **controller-complexity model** behind Table IV ([`complexity`]);
//! * a **multi-channel RoMe memory system** mirroring the conventional
//!   system in `rome-mc`, for system-level simulation ([`system`]).
//!
//! # Example
//!
//! ```
//! use rome_core::prelude::*;
//!
//! // A RoMe channel controller with the paper's default configuration.
//! let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
//!
//! // Stream 64 KiB of row-granularity reads through it.
//! let reqs = rome_mc::workload::streaming_reads(0, 64 * 1024, 4096);
//! let report = rome_core::simulate::run_to_completion(&mut ctrl, reqs);
//! assert_eq!(report.bytes_read, 64 * 1024);
//! // A single channel sustains close to its 64 GB/s peak with a tiny queue.
//! assert!(report.achieved_bandwidth_gbps > 50.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel_plan;
pub mod complexity;
pub mod controller;
pub mod generator;
pub mod pins;
pub mod refresh;
pub mod row_command;
pub mod simulate;
pub mod stats;
pub mod system;
pub mod timing;
pub mod vba;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::channel_plan::ChannelPlan;
    pub use crate::complexity::{ComplexityComparison, McComplexity};
    pub use crate::controller::{RomeController, RomeControllerConfig};
    pub use crate::generator::CommandGenerator;
    pub use crate::pins::CaPinModel;
    pub use crate::row_command::{RowCommand, RowCommandKind, VbaAddress};
    pub use crate::stats::RomeStats;
    pub use crate::system::{RomeMemorySystem, RomeSystemConfig};
    pub use crate::timing::RomeTimingParams;
    pub use crate::vba::{BankMerge, PcMerge, VbaConfig};
}

pub use channel_plan::ChannelPlan;
pub use complexity::{ComplexityComparison, McComplexity};
pub use controller::{RomeController, RomeControllerConfig};
pub use generator::CommandGenerator;
pub use pins::CaPinModel;
pub use row_command::{RowCommand, RowCommandKind, VbaAddress};
pub use stats::RomeStats;
pub use system::{RomeMemorySystem, RomeSystemConfig};
pub use timing::RomeTimingParams;
pub use vba::{BankMerge, PcMerge, VbaConfig};
