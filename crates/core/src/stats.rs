//! Statistics collected by the RoMe memory controller.

use serde::{Deserialize, Serialize};

use rome_hbm::units::Cycle;

use crate::generator::ExpansionCounts;

/// Statistics for one RoMe channel controller.
///
/// As with `rome_mc::ControllerStats`: event counts are exact under any
/// driver, while the per-tick fields (`total_cycles`, `stall_cycles`,
/// `idle_cycles`) count executed scheduling ticks — one per nanosecond only
/// under a cycle-stepped driver; an event-driven driver skips provably idle
/// nanoseconds. Use `run_with_limit_stepped` for per-nanosecond accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RomeStats {
    /// `RD_row` commands issued.
    pub rd_rows_issued: u64,
    /// `WR_row` commands issued.
    pub wr_rows_issued: u64,
    /// Pooled VBA refreshes issued.
    pub refreshes_issued: u64,
    /// Read requests completed.
    pub reads_completed: u64,
    /// Write requests completed.
    pub writes_completed: u64,
    /// Bytes returned by reads (useful payload).
    pub bytes_read: u64,
    /// Bytes absorbed by writes (useful payload).
    pub bytes_written: u64,
    /// Bytes actually moved over the DRAM interface (row granularity); the
    /// difference from the useful payload is overfetch.
    pub bytes_transferred: u64,
    /// Sum of read latencies in ns.
    pub total_read_latency: u64,
    /// Maximum read latency in ns.
    pub max_read_latency: u64,
    /// Scheduling cycles with pending work but no issuable command.
    pub stall_cycles: u64,
    /// Scheduling cycles with no pending work.
    pub idle_cycles: u64,
    /// Total scheduling cycles.
    pub total_cycles: u64,
    /// Conventional commands implied by the issued row commands (counted via
    /// the command-generator expansion; feeds the energy model).
    pub derived: DerivedCommandCounts,
}

/// Conventional-command counts implied by the row-level traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivedCommandCounts {
    /// Activations.
    pub activates: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Precharges.
    pub precharges: u64,
    /// Per-bank refreshes.
    pub refreshes: u64,
    /// Row-level commands sent over the MC–DRAM interface (one per
    /// `RD_row`/`WR_row`/refresh — the interposer traffic the energy model
    /// charges for C/A activity).
    pub interface_commands: u64,
}

impl DerivedCommandCounts {
    /// Accumulate one expansion worth of conventional commands.
    pub fn absorb(&mut self, counts: &ExpansionCounts) {
        self.activates += counts.activates;
        self.reads += counts.reads;
        self.writes += counts.writes;
        self.precharges += counts.precharges;
        self.refreshes += counts.refreshes;
        self.interface_commands += 1;
    }
}

impl RomeStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        RomeStats::default()
    }

    /// Total row commands issued (excluding refresh).
    pub fn row_commands_issued(&self) -> u64 {
        self.rd_rows_issued + self.wr_rows_issued
    }

    /// Total useful payload bytes.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Overfetched bytes: interface transfer minus useful payload.
    pub fn overfetch_bytes(&self) -> u64 {
        self.bytes_transferred.saturating_sub(self.bytes_total())
    }

    /// Overfetch as a fraction of transferred bytes (0.0 when nothing moved).
    pub fn overfetch_fraction(&self) -> f64 {
        if self.bytes_transferred == 0 {
            0.0
        } else {
            self.overfetch_bytes() as f64 / self.bytes_transferred as f64
        }
    }

    /// Mean read latency in ns.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }

    /// Achieved useful bandwidth in GB/s over `elapsed` ns.
    pub fn achieved_bandwidth_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_total() as f64 / elapsed as f64
        }
    }

    /// Merge another channel's statistics into this one.
    pub fn merge(&mut self, other: &RomeStats) {
        self.rd_rows_issued += other.rd_rows_issued;
        self.wr_rows_issued += other.wr_rows_issued;
        self.refreshes_issued += other.refreshes_issued;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.bytes_transferred += other.bytes_transferred;
        self.total_read_latency += other.total_read_latency;
        self.max_read_latency = self.max_read_latency.max(other.max_read_latency);
        self.stall_cycles += other.stall_cycles;
        self.idle_cycles += other.idle_cycles;
        self.total_cycles = self.total_cycles.max(other.total_cycles);
        self.derived.activates += other.derived.activates;
        self.derived.reads += other.derived.reads;
        self.derived.writes += other.derived.writes;
        self.derived.precharges += other.derived.precharges;
        self.derived.refreshes += other.derived.refreshes;
        self.derived.interface_commands += other.derived.interface_commands;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overfetch_accounting() {
        let s = RomeStats {
            bytes_read: 3000,
            bytes_written: 0,
            bytes_transferred: 4096,
            ..RomeStats::new()
        };
        assert_eq!(s.overfetch_bytes(), 1096);
        assert!((s.overfetch_fraction() - 1096.0 / 4096.0).abs() < 1e-12);
        let empty = RomeStats::new();
        assert_eq!(empty.overfetch_fraction(), 0.0);
    }

    #[test]
    fn derived_counts_absorb_expansions() {
        let mut d = DerivedCommandCounts::default();
        d.absorb(&ExpansionCounts {
            activates: 4,
            reads: 128,
            writes: 0,
            precharges: 4,
            refreshes: 0,
        });
        d.absorb(&ExpansionCounts {
            activates: 0,
            reads: 0,
            writes: 0,
            precharges: 0,
            refreshes: 2,
        });
        assert_eq!(d.activates, 4);
        assert_eq!(d.reads, 128);
        assert_eq!(d.refreshes, 2);
        assert_eq!(d.interface_commands, 2);
    }

    #[test]
    fn merge_and_derived_metrics() {
        let mut a = RomeStats {
            rd_rows_issued: 2,
            reads_completed: 2,
            bytes_read: 8192,
            bytes_transferred: 8192,
            total_read_latency: 200,
            max_read_latency: 120,
            ..RomeStats::new()
        };
        let b = RomeStats {
            wr_rows_issued: 1,
            writes_completed: 1,
            bytes_written: 4096,
            bytes_transferred: 4096,
            max_read_latency: 90,
            ..RomeStats::new()
        };
        a.merge(&b);
        assert_eq!(a.row_commands_issued(), 3);
        assert_eq!(a.bytes_total(), 12288);
        assert_eq!(a.max_read_latency, 120);
        assert_eq!(a.mean_read_latency(), 100.0);
        assert_eq!(a.achieved_bandwidth_gbps(1000), 12.288);
        assert_eq!(a.achieved_bandwidth_gbps(0), 0.0);
    }
}
