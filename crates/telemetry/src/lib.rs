//! # rome-telemetry — the unified metrics core
//!
//! A dependency-free, lock-cheap metrics layer shared by every crate of the
//! workspace: the engine records per-request simulated latencies, the
//! scenario server counts admissions and cache hits, and the socket front
//! end counts close reasons and measures frame round trips — all against
//! the same three primitives:
//!
//! * [`Counter`] — a monotonic counter behind *sharded* atomics: increments
//!   pick a per-thread shard (no contended cache line on the hot path),
//!   reads sum the shards. [`Gauge`] is the settable signed sibling.
//! * [`LatencyHistogram`] — a fixed-bucket log₂-scale histogram of `u64`
//!   samples (ns for simulated time, µs for wall clock; the histogram does
//!   not care). Mergeable ([`LatencyHistogram::merge`]), with quantile
//!   extraction that is *exact up to bucket resolution*: the reported
//!   quantile is the upper bound of the bucket holding the true rank
//!   statistic, clamped to the exact observed maximum — so `q ∈ [v, 2v)`
//!   for a true value `v`, and `max` is always exact. The concurrent form
//!   is [`AtomicHistogram`], snapshotting into the plain one.
//! * [`Registry`] — named get-or-register handles to all three, snapshotted
//!   in one call ([`Registry::snapshot`]) with names in lexicographic order
//!   so a rendered snapshot is canonical.
//!
//! # Determinism contract
//!
//! Simulated-time metrics are *derived observations*: recording a completed
//! request's latency never feeds back into the simulation, so a run is
//! bit-identical with telemetry recording on or off. The global
//! [`set_sim_sampling`] switch exists to prove exactly that (and to measure
//! recording overhead): drivers consult it once per run and skip histogram
//! recording when off, and every other report field must come out
//! identical. Wall-clock metrics (server phase spans, frame RTTs) are kept
//! in the registry — the ops surface — and never enter simulation results
//! unless a caller explicitly asks for trace spans.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for values with
/// the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Number of shards a [`Counter`] spreads its increments over. A small
/// power of two: enough to keep a handful of worker threads off each
/// other's cache lines without bloating every counter.
const COUNTER_SHARDS: usize = 8;

/// Whether simulated-time histogram recording is enabled (process-global,
/// default on). See the crate docs: flipping this must change *only*
/// whether latency histograms fill — every other simulation output is
/// pinned bit-identical either way.
static SIM_SAMPLING: AtomicBool = AtomicBool::new(true);

/// Whether simulated-time latency sampling is enabled.
pub fn sim_sampling() -> bool {
    SIM_SAMPLING.load(Ordering::Relaxed)
}

/// Enable or disable simulated-time latency sampling (process-global).
/// Used by the overhead bench and the on/off bit-identity tests.
pub fn set_sim_sampling(enabled: bool) {
    SIM_SAMPLING.store(enabled, Ordering::Relaxed);
}

/// One cache-line-aligned atomic cell, so neighboring shards never share a
/// line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// The per-thread shard index, assigned round-robin on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonic counter behind sharded atomics: `add` touches one
/// thread-local shard with a relaxed fetch-add, `get` sums the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge (single atomic; gauges are not hot).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The bucket of a sample: 0 for 0, otherwise `64 - leading_zeros`, i.e.
/// values `[2^(b-1), 2^b - 1]` land in bucket `b`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

/// The largest value bucket `b` can hold (the quantile representative).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A fixed-bucket log₂-scale latency histogram.
///
/// Samples are `u64` in whatever unit the producer uses (simulated ns,
/// wall-clock µs). Recording is a handful of integer ops; merging is
/// element-wise addition; quantiles walk the 65 buckets. The reported
/// quantile is the holding bucket's upper bound clamped to the exact
/// observed maximum, so for a true rank statistic `v ≥ 1` the answer `q`
/// satisfies `v ≤ q ≤ 2v - 1` (and `q = v` exactly when `v` is the
/// maximum); `v = 0` reports 0. The proptest suite pins these bounds
/// against a sorted-vector oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (wrapping on overflow, matching the atomic
    /// form's `fetch_add`; realistic latency sums never get close).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile at `numer/denom` (e.g. `quantile(95, 100)` for p95):
    /// the value at rank `ceil(count · numer / denom)` (1-based), reported
    /// at bucket resolution (see the type docs). 0 when empty. `denom`
    /// must be nonzero and `numer ≤ denom`.
    pub fn quantile(&self, numer: u64, denom: u64) -> u64 {
        debug_assert!(denom > 0 && numer <= denom);
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * numer).div_ceil(denom).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(95, 100)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// Merge `other` into `self` (exact: recording the concatenation of two
    /// sample streams yields the same histogram as merging the two
    /// per-stream histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The per-bucket counts (index = the log₂ bucket exponent).
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }
}

/// The concurrent form of [`LatencyHistogram`]: shared recording via
/// relaxed atomics, snapshotted into the plain histogram for reading.
/// Under concurrent writers a snapshot is a consistent-enough ops view
/// (each field individually atomic), which is all a stats endpoint needs.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        AtomicHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold a plain histogram in (per-bucket atomic adds): how per-run
    /// sim-time histograms aggregate into a shared registry histogram.
    /// Equivalent to recording every one of `other`'s samples here.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        if other.is_empty() {
            return;
        }
        for (c, b) in self.counts.iter().zip(&other.counts) {
            if *b > 0 {
                c.fetch_add(*b, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Snapshot into a plain (mergeable, quantile-extractable) histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (o, c) in out.counts.iter_mut().zip(&self.counts) {
            *o = c.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
        out
    }
}

/// A point-in-time view of a [`Registry`], names in lexicographic order
/// (so a rendered snapshot is canonical). Names are `Arc<str>` handles
/// shared with the registry's cached key order — snapshotting clones
/// refcounts, never name bytes.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: Vec<(Arc<str>, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(Arc<str>, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(Arc<str>, LatencyHistogram)>,
}

/// One metric family's storage: the name→handle map plus a cached,
/// lexicographically sorted `(name, handle)` list for snapshots.
///
/// The cache is invalidated by version counter, not in place: a register
/// bumps `version` *after* its insert, and a rebuild reads `version`
/// *before* it reads the map. A cache is only reused while the stored and
/// current versions agree, so a reused cache can never be missing a
/// registration that completed before it was built — at worst a racing
/// rebuild stores an already-stale version and the next snapshot rebuilds
/// again. Steady state (no new names — every stats tick after warm-up) hits
/// the cache and allocates nothing per metric.
#[derive(Debug, Default)]
struct MetricFamily<T> {
    map: RwLock<BTreeMap<Arc<str>, Arc<T>>>,
    version: AtomicU64,
    sorted: RwLock<SortedHandles<T>>,
}

/// A sorted-handle cache entry: the registry version it was built at plus
/// the name-sorted `(name, handle)` pairs.
type SortedHandles<T> = (u64, Arc<[(Arc<str>, Arc<T>)]>);

/// Read-lock with poison recovery. Lock poisoning is recoverable here for
/// the same reason as in the calibration cache: the critical sections only
/// clone/insert `Arc`s, so a poisoned map is never structurally
/// inconsistent.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-lock with poison recovery (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: Default> MetricFamily<T> {
    /// Get-or-register `name`, invalidating the sorted cache on register.
    fn get_or_register(&self, name: &str) -> Arc<T> {
        if let Some(found) = read_lock(&self.map).get(name) {
            return Arc::clone(found);
        }
        let handle = {
            let mut guard = write_lock(&self.map);
            if let Some(found) = guard.get(name) {
                return Arc::clone(found);
            }
            let handle = Arc::new(T::default());
            guard.insert(Arc::from(name), Arc::clone(&handle));
            handle
        };
        // Bump after the insert: any rebuild that observes this version
        // also observes the new entry (see the struct docs).
        self.version.fetch_add(1, Ordering::Release);
        handle
    }

    /// The sorted `(name, handle)` pairs, from the cache when it is
    /// current, rebuilt (and re-cached) when a registration outdated it.
    fn sorted_handles(&self) -> Arc<[(Arc<str>, Arc<T>)]> {
        let current = self.version.load(Ordering::Acquire);
        {
            let (cached_version, cached) = &*read_lock(&self.sorted);
            if *cached_version == current && !cached.is_empty() {
                return Arc::clone(cached);
            }
        }
        let rebuilt: Arc<[(Arc<str>, Arc<T>)]> = read_lock(&self.map)
            .iter()
            .map(|(k, v)| (Arc::clone(k), Arc::clone(v)))
            .collect();
        *write_lock(&self.sorted) = (current, Arc::clone(&rebuilt));
        rebuilt
    }
}

/// A named get-or-register home for counters, gauges, and histograms.
///
/// Registration takes a write lock (rare — handles are cached by their
/// owners); recording through a handle is lock-free. A snapshot walks the
/// cached sorted key order (rebuilt only after a registration), so periodic
/// stats emission does not re-sort or re-allocate names each tick.
#[derive(Debug, Default)]
pub struct Registry {
    counters: MetricFamily<Counter>,
    gauges: MetricFamily<Gauge>,
    histograms: MetricFamily<AtomicHistogram>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it (at zero) on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters.get_or_register(name)
    }

    /// The gauge named `name`, registering it (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges.get_or_register(name)
    }

    /// The histogram named `name`, registering it (empty) on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        self.histograms.get_or_register(name)
    }

    /// A point-in-time view of every registered metric, names sorted.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .sorted_handles()
            .iter()
            .map(|(k, v)| (Arc::clone(k), v.get()))
            .collect();
        let gauges = self
            .gauges
            .sorted_handles()
            .iter()
            .map(|(k, v)| (Arc::clone(k), v.get()))
            .collect();
        let histograms = self
            .histograms
            .sorted_handles()
            .iter()
            .map(|(k, v)| (Arc::clone(k), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_max_is_exact_and_top_quantile_clamps_to_it() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 100, 257, 999] {
            h.record(v);
        }
        assert_eq!(h.max(), 999);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3 + 100 + 257 + 999);
        // p99 rank = ceil(4*0.99) = 4 → last bucket, clamped to exact max.
        assert_eq!(h.p99(), 999);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = LatencyHistogram::new();
        for v in [0u64, 1, 5, 64, 1000, u64::MAX] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_live() {
        let r = Registry::new();
        r.counter("z.last").add(2);
        r.counter("a.first").inc();
        r.gauge("g").set(5);
        r.histogram("h").record(42);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".into(), 1), ("z.last".into(), 2)]
        );
        assert_eq!(snap.gauges, vec![("g".into(), 5)]);
        assert_eq!(snap.histograms[0].1.max(), 42);
        // Handles are live: the same name is the same counter.
        r.counter("a.first").add(10);
        assert_eq!(r.snapshot().counters[0].1, 11);
    }

    #[test]
    fn snapshot_key_cache_invalidates_on_register() {
        let r = Registry::new();
        r.counter("b").inc();
        let first = r.snapshot();
        assert_eq!(first.counters.len(), 1);
        // A second snapshot with no registrations reuses the cached key
        // order: same Arc, not a re-sorted clone.
        let second = r.snapshot();
        assert!(Arc::ptr_eq(&first.counters[0].0, &second.counters[0].0));
        // Registering a new name invalidates the cache; the next snapshot
        // sees both names, sorted.
        r.counter("a").add(3);
        let third = r.snapshot();
        let names: Vec<&str> = third.counters.iter().map(|(k, _)| &**k).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(third.counters[0].1, 3);
    }

    #[test]
    fn sim_sampling_toggle_round_trips() {
        assert!(sim_sampling());
        set_sim_sampling(false);
        assert!(!sim_sampling());
        set_sim_sampling(true);
        assert!(sim_sampling());
    }

    /// The sorted-vec oracle for a quantile: the 1-based rank statistic
    /// `ceil(n·q)` of the sorted samples.
    fn oracle_quantile(sorted: &[u64], numer: u64, denom: u64) -> u64 {
        let n = sorted.len() as u64;
        let rank = (n * numer).div_ceil(denom).max(1);
        sorted[(rank - 1) as usize]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Quantiles are exact up to bucket resolution: for true value v,
        /// the histogram reports q with v ≤ q ≤ max(2v-1, v), clamped to
        /// the exact maximum; zero reports zero.
        #[test]
        fn quantiles_bound_the_sorted_vec_oracle(
            samples in prop::collection::vec(0u64..1 << 48, 1..300),
            numer in 1u64..100,
        ) {
            let mut samples = samples;
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let v = oracle_quantile(&samples, numer, 100);
            let q = h.quantile(numer, 100);
            if v == 0 {
                // Rank statistic 0 must not be inflated by larger samples.
                prop_assert_eq!(q, 0);
            } else {
                prop_assert!(q >= v, "quantile below oracle: {} < {}", q, v);
                prop_assert!(
                    q <= (2 * v - 1).min(h.max()),
                    "quantile beyond bucket bound: {} > 2*{}-1",
                    q,
                    v
                );
            }
            prop_assert_eq!(h.max(), *samples.last().unwrap());
            prop_assert_eq!(h.quantile(100, 100), h.max());
        }

        /// Merging per-stream histograms equals recording the concatenated
        /// stream — exactly, including every bucket count.
        #[test]
        fn merge_equals_concatenated_recording(
            a in prop::collection::vec(0u64..1 << 32, 0..200),
            b in prop::collection::vec(0u64..1 << 32, 0..200),
        ) {
            let mut ha = LatencyHistogram::new();
            let mut hb = LatencyHistogram::new();
            let mut hc = LatencyHistogram::new();
            for &s in &a {
                ha.record(s);
                hc.record(s);
            }
            for &s in &b {
                hb.record(s);
                hc.record(s);
            }
            ha.merge(&hb);
            prop_assert_eq!(ha, hc);
        }
    }
}
