//! Sim-time flight recorder: bounded per-run lifecycle event recording and
//! a Chrome trace-event (catapult) renderer.
//!
//! The aggregate metrics of this crate answer *how much* (counters,
//! histograms); the flight recorder answers *why*: it captures each
//! request's lifecycle — arrival, backlog wait, enqueue, command issue,
//! completion — and, at the `commands` verbosity, what the banks were doing
//! meanwhile (row-open windows, refresh windows), all stamped in **simulated
//! nanoseconds**.
//!
//! # Determinism contract
//!
//! Recording is a derived observation, exactly like latency sampling (see
//! the crate docs): events are appended at decision points the scheduler
//! already passed, and nothing ever reads the recorder back into the
//! simulation. A run is therefore bit-identical with recording on or off,
//! and the same seed yields a byte-identical trace. When several recorders
//! contribute to one trace (one per channel), the merged stream is sorted
//! by the full [`TraceEvent`] ordering — `(ts, channel, seq, …)` — so the
//! merge order of the per-channel buffers (which may be harvested from
//! parallel workers in any order) cannot leak into the output.
//!
//! # Two clocks
//!
//! Everything in this module is **sim time**. Wall-clock forensics (which
//! request was in flight when the process panicked) belong to the serving
//! layer's black box, not here; the two clocks never mix in one stream.

use std::collections::VecDeque;

/// Default ring capacity of a [`FlightRecorder`] when the arming site does
/// not pick one: generous enough for the command stream of a few
/// milliseconds of dense single-channel simulation.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Verbosity of lifecycle recording.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Record nothing (the compiled-in no-op).
    #[default]
    Off,
    /// Per-request lifecycle only: arrival, backlog, enqueue, completion.
    Requests,
    /// Requests plus the command layer: issues, row-open windows, refreshes.
    Commands,
}

impl TraceLevel {
    /// Stable snake_case name (`"off"` / `"requests"` / `"commands"`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Requests => "requests",
            TraceLevel::Commands => "commands",
        }
    }

    /// Parse a stable name back into a level.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "requests" => Some(TraceLevel::Requests),
            "commands" => Some(TraceLevel::Commands),
            _ => None,
        }
    }

    /// Whether request-lifecycle events are recorded at this level.
    #[inline]
    pub fn records_requests(self) -> bool {
        self >= TraceLevel::Requests
    }

    /// Whether command-layer events are recorded at this level.
    #[inline]
    pub fn records_commands(self) -> bool {
        self >= TraceLevel::Commands
    }
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// A request was offered to the driver (instant; `requests` level).
    Arrival,
    /// A request waited in the driver backlog before a queue slot freed up
    /// (span from offer to admission; `requests` level).
    Backlog,
    /// A request entered a controller queue (instant; `requests` level).
    Enqueue,
    /// A data command (RD/WR or a RoMe row command) issued for a request
    /// (instant; `commands` level).
    Issue,
    /// A request's controller lifetime, queue arrival to data completion
    /// (span; `requests` level).
    Complete,
    /// A bank's row-open window, ACT to PRE (span; `commands` level).
    RowOpen,
    /// A refresh window on a bank or rank (span; `commands` level).
    Refresh,
}

impl TraceEventKind {
    /// Stable snake_case name, used as the Chrome event name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Arrival => "arrival",
            TraceEventKind::Backlog => "backlog",
            TraceEventKind::Enqueue => "enqueue",
            TraceEventKind::Issue => "issue",
            TraceEventKind::Complete => "complete",
            TraceEventKind::RowOpen => "row_open",
            TraceEventKind::Refresh => "refresh",
        }
    }

    /// Chrome `cat` field: request-lifecycle vs bank-state events.
    pub fn category(self) -> &'static str {
        match self {
            TraceEventKind::Arrival
            | TraceEventKind::Backlog
            | TraceEventKind::Enqueue
            | TraceEventKind::Issue
            | TraceEventKind::Complete => "request",
            TraceEventKind::RowOpen | TraceEventKind::Refresh => "bank",
        }
    }
}

/// One recorded lifecycle event. Plain `Copy` data; timestamps and
/// durations are simulated nanoseconds (`dur == 0` renders as an instant).
///
/// Field declaration order *is* the derived total order — `ts` first, then
/// `channel` and the recorder-local `seq` — which is what makes a merge of
/// per-channel buffers deterministic regardless of harvest order: two
/// distinct events from one recorder always differ in `seq`, and identical
/// events from identical parallel channels are indistinguishable, so any
/// stable sort yields the same byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceEvent {
    /// Start timestamp, simulated ns.
    pub ts: u64,
    /// Originating channel (Chrome `pid` track).
    pub channel: u16,
    /// Recorder-local sequence number (stamped by [`FlightRecorder`]).
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Request id (0 for bank-state events).
    pub id: u64,
    /// Flat bank index within the channel (Chrome `tid` track; 0 when the
    /// bank is unknown, e.g. request-level driver events).
    pub bank: u32,
    /// Row (or RoMe VBA row) involved, when meaningful.
    pub row: u32,
    /// Request payload bytes (0 for bank-state events).
    pub bytes: u64,
    /// Span duration in simulated ns (0 = instant).
    pub dur: u64,
    /// Whether the request is a write (false for bank-state events).
    pub write: bool,
}

impl TraceEvent {
    /// A zeroed event of `kind` at `ts`; fill the relevant fields with
    /// struct-update syntax (`TraceEvent { id, .. TraceEvent::at(…) }`).
    pub fn at(kind: TraceEventKind, ts: u64) -> TraceEvent {
        TraceEvent {
            ts,
            channel: 0,
            seq: 0,
            kind,
            id: 0,
            bank: 0,
            row: 0,
            bytes: 0,
            dur: 0,
            write: false,
        }
    }
}

/// A harvested recorder's contents: the retained events (oldest first, in
/// record order) and how many older events the bounded ring dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    /// Retained events, in record order.
    pub events: Vec<TraceEvent>,
    /// Events evicted by the ring bound (oldest-first eviction).
    pub dropped: u64,
}

impl TraceBuffer {
    /// Fold `other` into `self` and re-establish the canonical order (the
    /// full [`TraceEvent`] `Ord`), so the result is independent of which
    /// buffer was harvested first.
    pub fn absorb(&mut self, other: TraceBuffer) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        self.events.sort_unstable();
    }
}

/// How a [`FlightRecorder`] is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Verbosity to record at.
    pub level: TraceLevel,
    /// Ring capacity: once full, the oldest events are evicted (a flight
    /// recorder keeps the most recent history).
    pub capacity: usize,
    /// Channel id stamped on every event (Chrome `pid` track).
    pub channel: u16,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            capacity: DEFAULT_TRACE_CAPACITY,
            channel: 0,
        }
    }
}

impl TraceConfig {
    /// A config recording at `level` with the default capacity.
    pub fn with_level(level: TraceLevel) -> TraceConfig {
        TraceConfig {
            level,
            ..TraceConfig::default()
        }
    }

    /// The same config re-addressed to `channel` (multi-channel arming).
    pub fn for_channel(self, channel: u16) -> TraceConfig {
        TraceConfig { channel, ..self }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s owned by one recording site
/// (one controller, or one driver loop).
///
/// Disarmed (the default) it is a compiled-in no-op: every emission site
/// guards on [`FlightRecorder::enabled`] — one branch on a cold bool — and
/// records nothing. Armed, recording is a ring push; once the ring is full
/// the oldest event is evicted and counted in `dropped`.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    level: TraceLevel,
    capacity: usize,
    channel: u16,
    seq: u64,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

impl FlightRecorder {
    /// A disarmed recorder (records nothing until [`FlightRecorder::arm`]).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder armed as `config` says.
    pub fn new(config: TraceConfig) -> FlightRecorder {
        let mut rec = FlightRecorder::default();
        rec.arm(config);
        rec
    }

    /// Arm (or re-arm) the recorder: adopts the config and clears any
    /// previously recorded events.
    pub fn arm(&mut self, config: TraceConfig) {
        self.level = config.level;
        self.capacity = config.capacity.max(1);
        self.channel = config.channel;
        self.seq = 0;
        self.dropped = 0;
        self.events.clear();
    }

    /// Whether anything records at all (the hot-path gate).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Whether command-layer events record (`commands` verbosity).
    #[inline]
    pub fn commands(&self) -> bool {
        self.level.records_commands()
    }

    /// The armed level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one event, stamping the recorder's channel and next sequence
    /// number. No-op when disarmed.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.level == TraceLevel::Off {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push_back(TraceEvent {
            channel: self.channel,
            seq,
            ..event
        });
    }

    /// Take everything recorded and disarm: returns the retained events (in
    /// record order) plus the drop count, and leaves the recorder in the
    /// disabled state so a later un-traced run records nothing.
    pub fn harvest(&mut self) -> TraceBuffer {
        let buffer = TraceBuffer {
            events: std::mem::take(&mut self.events).into(),
            dropped: self.dropped,
        };
        *self = FlightRecorder::disabled();
        buffer
    }
}

/// Append a JSON-escaped string literal (the renderer only ever emits fixed
/// ASCII names, but stays defensive).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render events as Chrome trace-event (catapult) JSON: a `traceEvents`
/// array of complete (`ph:"X"`, spans) and thread-scoped instant
/// (`ph:"i"`) events with `pid` = channel and `tid` = bank, plus
/// `displayTimeUnit` so timestamps read as nanoseconds. The output opens
/// directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Events are re-sorted by the full [`TraceEvent`] order first, so the
/// rendering is canonical: `ts` is globally (hence per-track)
/// non-decreasing, and the bytes depend only on the event *set*, not the
/// caller's ordering.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<TraceEvent> = events.to_vec();
    sorted.sort_unstable();
    let mut out = String::with_capacity(64 + sorted.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, ev) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, ev.kind.as_str());
        out.push_str(",\"cat\":");
        push_json_str(&mut out, ev.kind.category());
        if ev.dur > 0 {
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                ev.ts, ev.dur
            ));
        } else {
            out.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", ev.ts));
        }
        out.push_str(&format!(
            ",\"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"row\":{},\"bytes\":{},\"write\":{}}}}}",
            ev.channel, ev.bank, ev.id, ev.row, ev.bytes, ev.write
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent::at(kind, ts)
    }

    #[test]
    fn disarmed_recorder_records_nothing() {
        let mut rec = FlightRecorder::disabled();
        assert!(!rec.enabled());
        rec.record(ev(3, TraceEventKind::Enqueue));
        assert!(rec.is_empty());
        assert_eq!(rec.harvest(), TraceBuffer::default());
    }

    #[test]
    fn ring_keeps_the_most_recent_events_and_counts_drops() {
        let mut rec = FlightRecorder::new(TraceConfig {
            level: TraceLevel::Requests,
            capacity: 3,
            channel: 7,
        });
        for t in 0..5 {
            rec.record(ev(t, TraceEventKind::Enqueue));
        }
        let buf = rec.harvest();
        assert_eq!(buf.dropped, 2);
        let ts: Vec<u64> = buf.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        // Channel and seq are stamped by the recorder.
        assert!(buf.events.iter().all(|e| e.channel == 7));
        let seq: Vec<u64> = buf.events.iter().map(|e| e.seq).collect();
        assert_eq!(seq, vec![2, 3, 4]);
        // Harvest disarms.
        assert!(!rec.enabled());
    }

    #[test]
    fn harvest_order_does_not_change_an_absorbed_buffer() {
        let mut a = FlightRecorder::new(TraceConfig::with_level(TraceLevel::Requests));
        let mut b =
            FlightRecorder::new(TraceConfig::with_level(TraceLevel::Requests).for_channel(1));
        a.record(ev(5, TraceEventKind::Enqueue));
        a.record(ev(9, TraceEventKind::Complete));
        b.record(ev(5, TraceEventKind::Enqueue));
        b.record(ev(7, TraceEventKind::Issue));
        let (ba, bb) = (a.harvest(), b.harvest());
        let mut ab = ba.clone();
        ab.absorb(bb.clone());
        let mut ba2 = bb;
        ba2.absorb(ba);
        assert_eq!(ab, ba2);
        assert_eq!(
            chrome_trace_json(&ab.events),
            chrome_trace_json(&ba2.events)
        );
    }

    #[test]
    fn chrome_rendering_is_canonical_and_well_shaped() {
        let complete = TraceEvent {
            id: 42,
            bank: 3,
            row: 17,
            bytes: 64,
            dur: 90,
            ..TraceEvent::at(TraceEventKind::Complete, 10)
        };
        let enqueue = TraceEvent {
            id: 42,
            bytes: 64,
            ..TraceEvent::at(TraceEventKind::Enqueue, 10)
        };
        // Caller order must not matter.
        let a = chrome_trace_json(&[complete, enqueue]);
        let b = chrome_trace_json(&[enqueue, complete]);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""), "{a}");
        assert!(a.contains("\"dur\":90"), "{a}");
        assert!(a.contains("\"ph\":\"i\",\"s\":\"t\""), "{a}");
        assert!(a.contains("\"pid\":0,\"tid\":3"), "{a}");
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn level_names_round_trip() {
        for level in [TraceLevel::Off, TraceLevel::Requests, TraceLevel::Commands] {
            assert_eq!(TraceLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(TraceLevel::Commands.records_requests());
        assert!(!TraceLevel::Requests.records_commands());
        assert!(!TraceLevel::Off.records_requests());
    }
}
