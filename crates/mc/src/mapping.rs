//! DRAM address mapping.
//!
//! The address-mapping unit translates a host physical address into DRAM
//! coordinates (channel, pseudo channel, stack ID, bank group, bank, row,
//! column). The choice of mapping determines how sequential traffic spreads
//! across channels and banks, and therefore how much bank-level and
//! channel-level parallelism a workload can exploit. The paper sweeps address
//! mappings for both the baseline and RoMe and picks the
//! bandwidth-maximizing one (§VI-A); [`MappingScheme::sweep_candidates`]
//! provides the equivalent candidate set.

use serde::{Deserialize, Serialize};

use rome_hbm::address::{BankAddress, DramAddress, PhysicalAddress};
use rome_hbm::organization::Organization;

/// One field of the DRAM coordinate tuple, in mapping order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingField {
    /// Channel bits.
    Channel,
    /// Pseudo-channel bits.
    PseudoChannel,
    /// Stack-ID (rank) bits.
    StackId,
    /// Bank-group bits.
    BankGroup,
    /// Bank bits.
    Bank,
    /// Row bits.
    Row,
    /// Column bits (above the intra-burst offset).
    Column,
}

impl MappingField {
    /// All fields (each must appear exactly once in a scheme).
    pub const ALL: [MappingField; 7] = [
        MappingField::Channel,
        MappingField::PseudoChannel,
        MappingField::StackId,
        MappingField::BankGroup,
        MappingField::Bank,
        MappingField::Row,
        MappingField::Column,
    ];
}

/// Behaviour shared by all address mappings.
pub trait AddressMapping {
    /// Translate a physical address into DRAM coordinates.
    fn map(&self, address: PhysicalAddress) -> DramAddress;

    /// Translate DRAM coordinates back into the physical address of the
    /// start of that burst (inverse of [`AddressMapping::map`] up to the
    /// intra-burst offset).
    fn unmap(&self, address: DramAddress) -> PhysicalAddress;

    /// Number of channels this mapping distributes addresses over.
    fn channels(&self) -> u16;
}

/// A field-order address mapping over power-of-two dimension sizes.
///
/// The physical address is consumed from the least-significant end: the
/// intra-burst offset first (`log2(access granularity)` bits), then each
/// field in `order[0]`, `order[1]`, … — so the *first* field in the order
/// changes most rapidly as addresses increase, i.e. it is interleaved at the
/// finest granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingScheme {
    order: Vec<MappingField>,
    org: Organization,
    channels: u16,
    /// Granularity in bytes at which the mapping rotates to the next unit
    /// of `order[0]` — equal to the controller access granularity.
    interleave_bytes: u64,
}

impl MappingScheme {
    /// Create a mapping with an explicit field order.
    ///
    /// `channels` is the total number of channels in the memory system
    /// (across all cubes); `interleave_bytes` is the access granularity at
    /// which consecutive addresses move to the next value of the first field
    /// (32 B for the HBM4 baseline, 4 KB for RoMe).
    ///
    /// # Panics
    ///
    /// Panics if `order` does not contain every [`MappingField`] exactly once.
    pub fn new(
        order: Vec<MappingField>,
        org: Organization,
        channels: u16,
        interleave_bytes: u64,
    ) -> Self {
        assert_eq!(
            order.len(),
            MappingField::ALL.len(),
            "mapping order must use every field once"
        );
        for f in MappingField::ALL {
            assert!(order.contains(&f), "mapping order missing field {f:?}");
        }
        assert!(
            interleave_bytes.is_power_of_two(),
            "interleave granularity must be a power of two"
        );
        MappingScheme {
            order,
            org,
            channels,
            interleave_bytes,
        }
    }

    /// The bandwidth-optimized baseline mapping for cache-line (32 B)
    /// accesses: consecutive cache lines rotate across channels, then pseudo
    /// channels, then bank groups, then banks, then columns, then stack IDs,
    /// then rows. This maximizes channel- and bank-level parallelism for
    /// streaming traffic, which is how the paper configures the baseline.
    pub fn hbm4_streaming(org: Organization, channels: u16) -> Self {
        MappingScheme::new(
            vec![
                MappingField::Channel,
                MappingField::PseudoChannel,
                MappingField::BankGroup,
                MappingField::Bank,
                MappingField::Column,
                MappingField::StackId,
                MappingField::Row,
            ],
            org,
            channels,
            org.access_granularity as u64,
        )
    }

    /// A row-locality-first mapping: consecutive cache lines walk the columns
    /// of one row before moving to the next channel. Maximizes row-buffer
    /// hits per bank at the cost of lower channel parallelism for short
    /// transfers.
    pub fn row_locality_first(org: Organization, channels: u16) -> Self {
        MappingScheme::new(
            vec![
                MappingField::Column,
                MappingField::Channel,
                MappingField::PseudoChannel,
                MappingField::BankGroup,
                MappingField::Bank,
                MappingField::StackId,
                MappingField::Row,
            ],
            org,
            channels,
            org.access_granularity as u64,
        )
    }

    /// The RoMe mapping: consecutive 4 KB rows rotate across channels, then
    /// virtual banks (bank index), then stack IDs, then rows. Pseudo channel
    /// and bank group are fixed to zero width at the interface (they are
    /// managed below the interface by the command generator), which is
    /// expressed here by placing them innermost where their dimension size
    /// of 1 consumes zero address bits.
    pub fn rome_row_interleaved(org: Organization, channels: u16, row_bytes: u64) -> Self {
        MappingScheme::new(
            vec![
                MappingField::Channel,
                MappingField::Bank,
                MappingField::StackId,
                MappingField::BankGroup,
                MappingField::PseudoChannel,
                MappingField::Column,
                MappingField::Row,
            ],
            org,
            channels,
            row_bytes,
        )
    }

    /// Candidate mappings for the address-mapping sweep (§VI-A).
    pub fn sweep_candidates(org: Organization, channels: u16) -> Vec<MappingScheme> {
        vec![
            MappingScheme::hbm4_streaming(org, channels),
            MappingScheme::row_locality_first(org, channels),
            MappingScheme::new(
                vec![
                    MappingField::PseudoChannel,
                    MappingField::Channel,
                    MappingField::Bank,
                    MappingField::BankGroup,
                    MappingField::Column,
                    MappingField::StackId,
                    MappingField::Row,
                ],
                org,
                channels,
                org.access_granularity as u64,
            ),
            MappingScheme::new(
                vec![
                    MappingField::Channel,
                    MappingField::BankGroup,
                    MappingField::PseudoChannel,
                    MappingField::Column,
                    MappingField::Bank,
                    MappingField::StackId,
                    MappingField::Row,
                ],
                org,
                channels,
                org.access_granularity as u64,
            ),
        ]
    }

    /// The configured interleave granularity in bytes.
    pub fn interleave_bytes(&self) -> u64 {
        self.interleave_bytes
    }

    /// The field order (finest-interleaved first).
    pub fn order(&self) -> &[MappingField] {
        &self.order
    }

    fn field_size(&self, field: MappingField) -> u64 {
        match field {
            MappingField::Channel => self.channels as u64,
            MappingField::PseudoChannel => self.org.pseudo_channels as u64,
            MappingField::StackId => self.org.stack_ids as u64,
            MappingField::BankGroup => self.org.bank_groups as u64,
            MappingField::Bank => self.org.banks_per_group as u64,
            MappingField::Row => self.org.rows_per_bank as u64,
            MappingField::Column => (self.org.row_bytes as u64
                / self.interleave_bytes.min(self.org.row_bytes as u64))
            .max(1),
        }
    }
}

impl AddressMapping for MappingScheme {
    fn map(&self, address: PhysicalAddress) -> DramAddress {
        let mut remaining = address.raw() / self.interleave_bytes;
        let mut values = [0u64; 7];
        for (i, field) in self.order.iter().enumerate() {
            let size = self.field_size(*field);
            values[i] = remaining % size;
            remaining /= size;
        }
        let mut channel = 0u64;
        let mut pc = 0u64;
        let mut sid = 0u64;
        let mut bg = 0u64;
        let mut bank = 0u64;
        let mut row = 0u64;
        let mut column = 0u64;
        for (i, field) in self.order.iter().enumerate() {
            match field {
                MappingField::Channel => channel = values[i],
                MappingField::PseudoChannel => pc = values[i],
                MappingField::StackId => sid = values[i],
                MappingField::BankGroup => bg = values[i],
                MappingField::Bank => bank = values[i],
                MappingField::Row => {
                    row = values[i] + remaining * self.field_size(MappingField::Row).min(1)
                }
                MappingField::Column => column = values[i],
            }
        }
        // Bits above the configured capacity wrap (documented behaviour).
        let _ = remaining;
        let columns_per_interleave =
            (self.interleave_bytes / self.org.access_granularity as u64).max(1);
        let column_units = column * columns_per_interleave
            + (address.raw() % self.interleave_bytes) / self.org.access_granularity as u64;
        DramAddress {
            channel: channel as u16,
            bank: BankAddress::new(pc as u8, sid as u8, bg as u8, bank as u8),
            row: row as u32,
            column: column_units as u16,
        }
    }

    fn unmap(&self, address: DramAddress) -> PhysicalAddress {
        let columns_per_interleave =
            (self.interleave_bytes / self.org.access_granularity as u64).max(1);
        let column_interleave = address.column as u64 / columns_per_interleave;
        let intra =
            (address.column as u64 % columns_per_interleave) * self.org.access_granularity as u64;
        let mut result = 0u64;
        let mut multiplier = 1u64;
        for field in &self.order {
            let size = self.field_size(*field);
            let value = match field {
                MappingField::Channel => address.channel as u64,
                MappingField::PseudoChannel => address.bank.pseudo_channel as u64,
                MappingField::StackId => address.bank.stack_id as u64,
                MappingField::BankGroup => address.bank.bank_group as u64,
                MappingField::Bank => address.bank.bank as u64,
                MappingField::Row => address.row as u64,
                MappingField::Column => column_interleave,
            };
            result += value % size * multiplier;
            multiplier *= size;
        }
        PhysicalAddress::new(result * self.interleave_bytes + intra)
    }

    fn channels(&self) -> u16 {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> Organization {
        Organization::hbm4()
    }

    #[test]
    fn consecutive_cache_lines_rotate_across_channels_first() {
        let m = MappingScheme::hbm4_streaming(org(), 8);
        let a0 = m.map(PhysicalAddress::new(0));
        let a1 = m.map(PhysicalAddress::new(32));
        let a8 = m.map(PhysicalAddress::new(8 * 32));
        assert_eq!(a0.channel, 0);
        assert_eq!(a1.channel, 1);
        assert_eq!(a0.bank, a1.bank);
        // After wrapping the 8 channels, the pseudo channel advances.
        assert_eq!(a8.channel, 0);
        assert_eq!(a8.bank.pseudo_channel, 1);
    }

    #[test]
    fn row_locality_mapping_keeps_a_row_together() {
        let m = MappingScheme::row_locality_first(org(), 8);
        let a0 = m.map(PhysicalAddress::new(0));
        let a1 = m.map(PhysicalAddress::new(32));
        assert_eq!(a0.channel, a1.channel);
        assert_eq!(a0.row, a1.row);
        assert_eq!(a1.column, a0.column + 1);
    }

    #[test]
    fn map_unmap_round_trip_streaming() {
        let m = MappingScheme::hbm4_streaming(org(), 16);
        for addr in (0..1_000_000u64).step_by(32 * 97) {
            let d = m.map(PhysicalAddress::new(addr));
            let back = m.unmap(d);
            assert_eq!(back.raw(), addr, "round trip failed for {addr:#x} -> {d}");
        }
    }

    #[test]
    fn map_unmap_round_trip_rome_granularity() {
        let m = MappingScheme::rome_row_interleaved(org(), 36, 4096);
        for addr in (0..200_000_000u64).step_by(4096 * 631) {
            let d = m.map(PhysicalAddress::new(addr));
            let back = m.unmap(d);
            assert_eq!(back.raw(), addr);
        }
    }

    #[test]
    fn rome_mapping_rotates_4k_chunks_across_channels() {
        let m = MappingScheme::rome_row_interleaved(org(), 36, 4096);
        let a = m.map(PhysicalAddress::new(0));
        let b = m.map(PhysicalAddress::new(4096));
        let c = m.map(PhysicalAddress::new(36 * 4096));
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 0);
        // After the channels wrap, the bank advances.
        assert_ne!(c.bank.bank, a.bank.bank);
        // Intra-chunk addresses stay in the same channel and row.
        let inner = m.map(PhysicalAddress::new(512));
        assert_eq!(inner.channel, a.channel);
        assert_eq!(inner.row, a.row);
        assert_eq!(inner.column, 16);
    }

    #[test]
    fn sweep_candidates_are_distinct_and_valid() {
        let candidates = MappingScheme::sweep_candidates(org(), 32);
        assert!(candidates.len() >= 4);
        for c in &candidates {
            assert_eq!(c.channels(), 32);
            // Every candidate must round-trip.
            let probe = PhysicalAddress::new(123 * 32);
            assert_eq!(c.unmap(c.map(probe)).raw(), probe.raw());
        }
        assert_ne!(candidates[0], candidates[1]);
    }

    #[test]
    #[should_panic(expected = "missing field")]
    fn missing_field_panics() {
        let mut order = vec![MappingField::Channel; 7];
        order[1] = MappingField::Row;
        order[2] = MappingField::Column;
        order[3] = MappingField::Bank;
        order[4] = MappingField::BankGroup;
        order[5] = MappingField::StackId;
        order[6] = MappingField::Channel; // PseudoChannel missing
        MappingScheme::new(order, org(), 8, 32);
    }

    #[test]
    fn interleave_accessors() {
        let m = MappingScheme::hbm4_streaming(org(), 8);
        assert_eq!(m.interleave_bytes(), 32);
        assert_eq!(m.order().len(), 7);
        assert_eq!(m.channels(), 8);
    }
}
