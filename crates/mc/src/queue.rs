//! Request queues.
//!
//! Conventional memory controllers hold in-flight requests in
//! content-addressable (CAM) structures so that a ready request targeting any
//! bank can be located in one cycle (§II-D). This module models that queue:
//! bounded capacity, oldest-first iteration, and lookup by DRAM coordinates.
//! The queue size is one of the five components the paper's Table IV claims
//! RoMe shrinks, so occupancy statistics are tracked here.
//!
//! # Data-oriented layout
//!
//! The queue is stored struct-of-arrays. The FR-FCFS scan only needs a few
//! fields per entry — the cached ready bounds, the flat bank index, and the
//! row — so those live in parallel position-indexed POD arrays (`ready_at`,
//! `act_ready_at`, `bank`, `row`, `chan`) that the scan walks linearly with
//! no pointer chasing and no 64-byte entry loads for skipped entries. The
//! full [`QueueEntry`] payloads live in a stable *arena* (slab with a free
//! list); positions hold only the arena slot number, so removing an entry
//! shifts a handful of small POD arrays (cheap memmoves) while the payloads
//! never move. A per-bank occupancy count plus a bank bitmask (`bank_count`,
//! `pending_mask`; bit `b` set iff `bank_count[b] > 0`) answers the
//! "anything pending for this bank?" CAM queries with one word test in the
//! common negative case. Every array is plain-old-data, so checkpointing or
//! forking a queue is a few memcpys.

use serde::{Deserialize, Serialize};

use rome_hbm::address::{BankAddress, DramAddress};
use rome_hbm::organization::Organization;
use rome_hbm::units::Cycle;

use crate::request::{MemoryRequest, RequestKind};

/// An entry in the request queue: the request plus its decoded DRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// The pending request (fragment).
    pub request: MemoryRequest,
    /// Its decoded DRAM coordinates.
    pub dram: DramAddress,
}

/// Maps [`BankAddress`]es to flat per-channel bank indices (PC-major, then
/// stack ID, then bank group) so queue and controller agree on one bank
/// numbering. Copyable so the queue can own one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankIndexer {
    per_pc: u32,
    per_sid: u32,
    banks_per_group: u32,
    banks: u32,
}

impl BankIndexer {
    /// Build the indexer for one channel of `org`.
    pub fn new(org: &Organization) -> Self {
        BankIndexer {
            per_pc: org.banks_per_pseudo_channel(),
            per_sid: (org.bank_groups * org.banks_per_group) as u32,
            banks_per_group: org.banks_per_group as u32,
            banks: org.banks_per_channel(),
        }
    }

    /// Flat index of `bank` within the channel.
    #[inline]
    pub fn flat(&self, bank: BankAddress) -> usize {
        (bank.pseudo_channel as u32 * self.per_pc
            + bank.stack_id as u32 * self.per_sid
            + bank.bank_group as u32 * self.banks_per_group
            + bank.bank as u32) as usize
    }

    /// Number of banks in the channel.
    pub fn banks(&self) -> usize {
        self.banks as usize
    }

    /// The pseudo channel a flat bank index belongs to.
    #[inline]
    pub fn pseudo_channel_of(&self, flat: usize) -> usize {
        flat / self.per_pc as usize
    }

    /// The rank (pseudo channel × stack ID) a flat bank index belongs to.
    /// Flat indices are PC-major then SID-major, so ranks are contiguous
    /// runs of `per_sid` banks.
    #[inline]
    pub fn rank_of(&self, flat: usize) -> usize {
        flat / self.per_sid as usize
    }

    /// Number of ranks in the channel.
    #[inline]
    pub fn ranks(&self) -> usize {
        (self.banks / self.per_sid) as usize
    }

    /// A representative bank address in the same rank as `flat` (bank group
    /// and bank zeroed). Rank-scoped constraint queries give the same answer
    /// for every bank in the rank, so this suffices to probe them.
    #[inline]
    pub fn rank_address(&self, flat: usize) -> BankAddress {
        let pc = flat / self.per_pc as usize;
        let sid = (flat % self.per_pc as usize) / self.per_sid as usize;
        BankAddress::new(pc as u8, sid as u8, 0, 0)
    }
}

/// One arena slot: the entry plus the *oracle* scan's ready-cache bounds.
/// This is the pre-SoA array-of-structs layout, kept so the compiled-in
/// oracle scan (`soa: false`) exercises the original memory-access pattern:
/// it reads and writes these fields through the position→slot indirection,
/// while the SoA scan uses the packed `ready_at`/`act_ready_at` arrays. The
/// two hint stores are independent memoization caches — every value written
/// to either is a valid lower bound for the entry's lifetime, and an unset
/// (0) hint merely costs a re-probe — so the paths need no cross-
/// synchronization to stay bit-identical.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ArenaSlot {
    entry: QueueEntry,
    /// Oracle copy of the cached column-ready bound (0 = unknown).
    ready_at: Cycle,
    /// Oracle copy of the cached ACT-ready bound (0 = unknown).
    act_ready_at: Cycle,
}

/// A bounded, age-ordered request queue with CAM-style lookups, stored
/// struct-of-arrays (see the module docs for the layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestQueue {
    indexer: BankIndexer,
    capacity: usize,
    // --- Hot, position-indexed, age-ordered parallel arrays. Index i is
    // the i-th oldest entry; all five shift together on removal. ---
    /// Cached lower bound on the earliest cycle the entry's column command
    /// can issue (0 = unknown). Because DRAM timing constraints only ever
    /// move *later* as commands are recorded, a bound computed once stays a
    /// valid lower bound for the entry's lifetime, so the FR-FCFS scan can
    /// skip the entry with one comparison until its cached cycle arrives
    /// instead of re-evaluating the full constraint engine every tick.
    ready_at: Vec<Cycle>,
    /// Cached lower bound on the earliest cycle an ACT for the entry's bank
    /// can issue (0 = unknown). Same monotonicity argument as `ready_at`.
    act_ready_at: Vec<Cycle>,
    /// Flat bank index of the entry's target bank.
    bank: Vec<u16>,
    /// The entry's target row.
    row: Vec<u32>,
    /// The entry's channel id (CAM queries compare it; see
    /// [`RequestQueue::has_pending_for_bank`]).
    chan: Vec<u16>,
    /// 1 iff the entry's bank currently has the entry's row open (an
    /// incrementally maintained copy of the scheduler's row-hit predicate;
    /// see [`RequestQueue::note_act`]). Lets the scans test "row hit" with
    /// one byte load instead of a mask word plus an open-row compare.
    row_match: Vec<u8>,
    /// 1 iff the entry's bank is open AND some queued entry still wants the
    /// open row (`hits_open[bank] > 0`), i.e. the adaptive page policy
    /// forbids precharging it. Maintained at the same mutation points as
    /// `row_match` (plus the 0↔>0 transitions of `hits_open` on
    /// push/remove), so the row scan's pre-pass can retire these entries
    /// with one position-indexed byte load instead of a per-bank gather.
    keep_open: Vec<u8>,
    /// Arena slot holding the entry's full payload.
    slot: Vec<u32>,
    // --- Cold arena: stable-index slab of full payloads plus the oracle
    // scan's hint fields (the pre-SoA array-of-structs layout). ---
    arena: Vec<ArenaSlot>,
    /// Free arena slots available for reuse.
    free: Vec<u32>,
    // --- Per-bank occupancy (flat bank index). ---
    /// Number of queued entries targeting each bank.
    bank_count: Vec<u16>,
    /// Bit `b` set iff `bank_count[b] > 0` (word `b >> 6`, bit `b & 63`).
    pending_mask: Vec<u64>,
    /// Number of queued entries whose row matches the bank's open row
    /// (`hits_open[b]` = count of set `row_match` flags among bank `b`'s
    /// entries; 0 whenever the bank is closed). `hits_open[b] > 0` answers
    /// the adaptive-page-policy CAM query ("does any queued entry still
    /// want the open row?") in O(1), replacing a full-queue walk per probe.
    hits_open: Vec<u16>,
    /// Mirror of the scheduler's open-row state (bit `b & 63` of word
    /// `b >> 6` set iff bank `b` has a row open), maintained via
    /// [`RequestQueue::note_act`] / [`RequestQueue::note_pre`] so `push`
    /// can compute `row_match` for new entries without asking the
    /// controller.
    open_mask: Vec<u64>,
    /// The open row per bank (valid only where the `open_mask` bit is set).
    open_row: Vec<u32>,
    /// Sum of occupancy samples (one per `sample_occupancy` call).
    occupancy_sum: u64,
    /// Number of occupancy samples taken.
    occupancy_samples: u64,
    /// Maximum occupancy ever observed.
    peak_occupancy: usize,
}

/// Split-borrow view over one queue's hot arrays, handed to the SoA
/// scheduler scans (see [`RequestQueue::scan_view`]). The hint slices are
/// mutable (scans memoize bounds in place); everything else is shared.
pub struct ScanView<'a> {
    /// Cached column-ready bounds (0 = unknown), position-indexed.
    pub ready_at: &'a mut [Cycle],
    /// Cached ACT-ready bounds (0 = unknown), position-indexed.
    pub act_ready_at: &'a mut [Cycle],
    /// Flat bank index per entry.
    pub bank: &'a [u16],
    /// Target row per entry.
    pub row: &'a [u32],
    /// 1 iff the entry's row is open in its bank (incrementally maintained;
    /// see [`RequestQueue::note_act`]).
    pub row_match: &'a [u8],
    /// Per-bank count of entries matching the bank's open row (the O(1)
    /// adaptive-page-policy CAM; see the field docs on `RequestQueue`).
    pub hits_open: &'a [u16],
    /// 1 iff the entry's bank is open and the adaptive page policy forbids
    /// precharging it (some entry wants the open row). Position-indexed
    /// mirror of `hits_open[bank] > 0`, so the row-scan pre-pass never
    /// gathers per-bank state.
    pub keep_open: &'a [u8],
    /// Payload and CAM lookups (shared refs, so it stays usable while the
    /// hint slices above are borrowed mutably).
    pub entries: EntryView<'a>,
}

/// Shared-ref companion to [`ScanView`]: the lookups a scan needs beyond
/// the hot arrays — entry payloads through the position→slot indirection
/// and the CAM queries.
#[derive(Clone, Copy)]
pub struct EntryView<'a> {
    bank: &'a [u16],
    row: &'a [u32],
    chan: &'a [u16],
    slot: &'a [u32],
    arena: &'a [ArenaSlot],
    bank_count: &'a [u16],
    indexer: BankIndexer,
}

impl EntryView<'_> {
    /// The full payload of the entry at `index` (cold arena load).
    #[inline]
    pub fn entry(&self, index: usize) -> &QueueEntry {
        &self.arena[self.slot[index] as usize].entry
    }

    /// Same predicate as [`RequestQueue::has_pending_row_hit`], evaluated
    /// branchlessly (an OR-fold over the packed arrays instead of an
    /// early-exit `any`), which lets the compiler vectorize the walk — the
    /// common answer in a dense scan is "no hit", which costs a full walk
    /// either way.
    #[inline]
    pub fn has_pending_row_hit(&self, addr: DramAddress) -> bool {
        let flat = self.indexer.flat(addr.bank);
        if self.bank_count[flat] == 0 {
            return false;
        }
        let flat = flat as u16;
        let n = self.slot.len();
        let (bank, chan, row) = (&self.bank[..n], &self.chan[..n], &self.row[..n]);
        let mut hit = false;
        for i in 0..n {
            hit |= (bank[i] == flat) & (chan[i] == addr.channel) & (row[i] == addr.row);
        }
        hit
    }
}

impl RequestQueue {
    /// Create a queue holding at most `capacity` entries, indexing banks via
    /// `indexer`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, indexer: BankIndexer) -> Self {
        assert!(capacity > 0, "request queue capacity must be non-zero");
        assert!(
            capacity <= u16::MAX as usize,
            "request queue capacity exceeds per-bank counter range"
        );
        let banks = indexer.banks();
        RequestQueue {
            indexer,
            capacity,
            ready_at: Vec::with_capacity(capacity),
            act_ready_at: Vec::with_capacity(capacity),
            bank: Vec::with_capacity(capacity),
            row: Vec::with_capacity(capacity),
            chan: Vec::with_capacity(capacity),
            slot: Vec::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            free: Vec::new(),
            row_match: Vec::with_capacity(capacity),
            keep_open: Vec::with_capacity(capacity),
            bank_count: vec![0; banks],
            pending_mask: vec![0; banks.div_ceil(64)],
            hits_open: vec![0; banks],
            open_mask: vec![0; banks.div_ceil(64)],
            open_row: vec![0; banks],
            occupancy_sum: 0,
            occupancy_samples: 0,
            peak_occupancy: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued entries.
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.slot.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.slot.len() >= self.capacity
    }

    /// Attempt to enqueue an entry; returns `false` (and leaves the entry
    /// with the caller) if the queue is full.
    pub fn push(&mut self, entry: QueueEntry) -> bool {
        if self.is_full() {
            return false;
        }
        let flat = self.indexer.flat(entry.dram.bank);
        let slot = ArenaSlot {
            entry,
            ready_at: 0,
            act_ready_at: 0,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.arena[s as usize] = slot;
                s
            }
            None => {
                self.arena.push(slot);
                (self.arena.len() - 1) as u32
            }
        };
        self.ready_at.push(0);
        self.act_ready_at.push(0);
        self.bank.push(flat as u16);
        self.row.push(entry.dram.row);
        self.chan.push(entry.dram.channel);
        let open = self.open_mask[flat >> 6] >> (flat & 63) & 1 == 1;
        let hit = open && self.open_row[flat] == entry.dram.row;
        if hit && self.hits_open[flat] == 0 {
            // First pending hit on this open bank: the bank's existing
            // entries flip from "may precharge" to "keep open".
            let n = self.slot.len();
            let (bank, keep_open) = (&self.bank[..n], &mut self.keep_open[..n]);
            let flat16 = flat as u16;
            for i in 0..n {
                keep_open[i] |= (bank[i] == flat16) as u8;
            }
        }
        self.row_match.push(hit as u8);
        self.hits_open[flat] += hit as u16;
        self.keep_open
            .push((open && self.hits_open[flat] > 0) as u8);
        self.slot.push(slot);
        self.bank_count[flat] += 1;
        self.pending_mask[flat >> 6] |= 1 << (flat & 63);
        self.peak_occupancy = self.peak_occupancy.max(self.slot.len());
        true
    }

    /// Record that the scheduler opened `row` in flat bank `flat`: refresh
    /// the per-entry `row_match` flags for that bank and its open-row-hit
    /// count. Must be called for every row activation (the controller's
    /// `set_open_row` is the single such mutation point) on both queues, so
    /// the flags stay exact regardless of which queue is being scanned.
    /// One branchless pass over the packed arrays — the same cost class as
    /// the position shifts `remove` already performs, paid only on the rare
    /// ACT, not per scan.
    pub fn note_act(&mut self, flat: usize, row: u32) {
        self.open_mask[flat >> 6] |= 1 << (flat & 63);
        self.open_row[flat] = row;
        if self.bank_count[flat] == 0 {
            self.hits_open[flat] = 0;
            return;
        }
        let n = self.slot.len();
        let (bank, rows) = (&self.bank[..n], &self.row[..n]);
        let flat16 = flat as u16;
        let mut hits = 0u16;
        for i in 0..n {
            hits += ((bank[i] == flat16) & (rows[i] == row)) as u16;
        }
        let keep = (hits > 0) as u8;
        let (row_match, keep_open) = (&mut self.row_match[..n], &mut self.keep_open[..n]);
        for i in 0..n {
            let same = bank[i] == flat16;
            let hit = same & (rows[i] == row);
            row_match[i] = (row_match[i] & !(same as u8)) | hit as u8;
            keep_open[i] = (keep_open[i] & !(same as u8)) | (same as u8 & keep);
        }
        self.hits_open[flat] = hits;
    }

    /// Record that the scheduler closed flat bank `flat` (PRE or refresh):
    /// clear the bank's `row_match` flags and open-row-hit count. See
    /// [`RequestQueue::note_act`] for the maintenance contract.
    pub fn note_pre(&mut self, flat: usize) {
        self.open_mask[flat >> 6] &= !(1 << (flat & 63));
        if self.bank_count[flat] != 0 {
            let n = self.slot.len();
            let (bank, row_match, keep_open) = (
                &self.bank[..n],
                &mut self.row_match[..n],
                &mut self.keep_open[..n],
            );
            let flat16 = flat as u16;
            for i in 0..n {
                let other = (bank[i] != flat16) as u8;
                row_match[i] &= other;
                keep_open[i] &= other;
            }
        }
        self.hits_open[flat] = 0;
    }

    /// The entry at `index` (oldest first), if any.
    pub fn get(&self, index: usize) -> Option<&QueueEntry> {
        self.slot.get(index).map(|&s| &self.arena[s as usize].entry)
    }

    /// The cached ready bound of the entry at `index` (0 = unknown).
    #[inline]
    pub fn ready_hint(&self, index: usize) -> Cycle {
        self.ready_at.get(index).copied().unwrap_or(0)
    }

    /// Cache a lower bound on the earliest issue cycle of the entry at
    /// `index`. The bound must remain valid for the lifetime of the entry
    /// (DRAM timing constraints are monotone, so any bound read from the
    /// constraint engine qualifies).
    #[inline]
    pub fn set_ready_hint(&mut self, index: usize, at: Cycle) {
        if let Some(r) = self.ready_at.get_mut(index) {
            *r = at;
        }
    }

    /// The cached ACT-ready bound of the entry at `index` (0 = unknown).
    #[inline]
    pub fn act_ready_hint(&self, index: usize) -> Cycle {
        self.act_ready_at.get(index).copied().unwrap_or(0)
    }

    /// Cache a lower bound on the earliest ACT issue cycle for the entry at
    /// `index` (see [`RequestQueue::set_ready_hint`] for the validity
    /// argument).
    #[inline]
    pub fn set_act_ready_hint(&mut self, index: usize, at: Cycle) {
        if let Some(r) = self.act_ready_at.get_mut(index) {
            *r = at;
        }
    }

    /// Oracle-layout copy of the ready bound for the entry at `index`,
    /// stored inside the entry's arena slot (0 = unknown). Used only by the
    /// compiled-in oracle scan; independent of the packed-array hints (see
    /// the docs on the private `ArenaSlot` type).
    #[inline]
    pub fn ready_hint_oracle(&self, index: usize) -> Cycle {
        self.slot
            .get(index)
            .map_or(0, |&s| self.arena[s as usize].ready_at)
    }

    /// Cache a ready bound in the oracle (arena-slot) hint store.
    #[inline]
    pub fn set_ready_hint_oracle(&mut self, index: usize, at: Cycle) {
        if let Some(&s) = self.slot.get(index) {
            self.arena[s as usize].ready_at = at;
        }
    }

    /// Oracle-layout copy of the ACT-ready bound for the entry at `index`
    /// (see [`RequestQueue::ready_hint_oracle`]).
    #[inline]
    pub fn act_ready_hint_oracle(&self, index: usize) -> Cycle {
        self.slot
            .get(index)
            .map_or(0, |&s| self.arena[s as usize].act_ready_at)
    }

    /// Cache an ACT-ready bound in the oracle (arena-slot) hint store.
    #[inline]
    pub fn set_act_ready_hint_oracle(&mut self, index: usize, at: Cycle) {
        if let Some(&s) = self.slot.get(index) {
            self.arena[s as usize].act_ready_at = at;
        }
    }

    /// The flat bank index of the entry at `index` (hot array; no arena
    /// load). The index must be in bounds.
    #[inline]
    pub fn bank_at(&self, index: usize) -> usize {
        self.bank[index] as usize
    }

    /// The target row of the entry at `index` (hot array; no arena load).
    /// The index must be in bounds.
    #[inline]
    pub fn row_at(&self, index: usize) -> u32 {
        self.row[index]
    }

    /// Iterate over the entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.slot
            .iter()
            .map(move |&s| &self.arena[s as usize].entry)
    }

    /// The oldest entry, if any.
    pub fn oldest(&self) -> Option<&QueueEntry> {
        self.slot.first().map(|&s| &self.arena[s as usize].entry)
    }

    /// Find the oldest entry matching `pred` and return its position.
    pub fn find_oldest<F: Fn(&QueueEntry) -> bool>(&self, pred: F) -> Option<usize> {
        self.slot
            .iter()
            .position(|&s| pred(&self.arena[s as usize].entry))
    }

    /// Remove and return the entry at `index` (as returned by
    /// [`RequestQueue::find_oldest`]). Shifts the hot arrays; the payload
    /// stays put and its arena slot is recycled.
    pub fn remove(&mut self, index: usize) -> Option<QueueEntry> {
        if index >= self.slot.len() {
            return None;
        }
        self.ready_at.remove(index);
        self.act_ready_at.remove(index);
        let flat = self.bank.remove(index) as usize;
        self.row.remove(index);
        self.chan.remove(index);
        let hit = self.row_match.remove(index);
        self.keep_open.remove(index);
        self.hits_open[flat] -= hit as u16;
        if hit == 1 && self.hits_open[flat] == 0 {
            // Last pending hit gone: the bank's remaining entries may
            // precharge again.
            let n = self.slot.len() - 1;
            let (bank, keep_open) = (&self.bank[..n], &mut self.keep_open[..n]);
            let flat16 = flat as u16;
            for i in 0..n {
                keep_open[i] &= (bank[i] != flat16) as u8;
            }
        }
        let slot = self.slot.remove(index);
        self.bank_count[flat] -= 1;
        if self.bank_count[flat] == 0 {
            self.pending_mask[flat >> 6] &= !(1 << (flat & 63));
        }
        self.free.push(slot);
        Some(self.arena[slot as usize].entry)
    }

    /// Whether any queued entry targets the same bank and row as `addr`
    /// (used by the adaptive page policy to decide whether to keep a row
    /// open). One mask-word test answers the common negative case; only a
    /// non-empty bank walks the packed arrays.
    pub fn has_pending_row_hit(&self, addr: DramAddress) -> bool {
        let flat = self.indexer.flat(addr.bank);
        if self.bank_count[flat] == 0 {
            return false;
        }
        let flat = flat as u16;
        (0..self.slot.len()).any(|i| {
            self.bank[i] == flat && self.chan[i] == addr.channel && self.row[i] == addr.row
        })
    }

    /// Whether any queued entry targets the given bank.
    pub fn has_pending_for_bank(&self, addr: DramAddress) -> bool {
        let flat = self.indexer.flat(addr.bank);
        if self.bank_count[flat] == 0 {
            return false;
        }
        let flat = flat as u16;
        (0..self.slot.len()).any(|i| self.bank[i] == flat && self.chan[i] == addr.channel)
    }

    /// Split-borrow view over the hot parallel arrays for one scheduler
    /// scan. Handing the scan loop plain slices (grabbed once) instead of
    /// accessor calls on `&mut self` lets the compiler keep the array base
    /// pointers in registers and hoist the bounds checks out of the
    /// per-entry loop — through `&mut self` accessors it must reload them
    /// every iteration, because any such call could in principle reallocate
    /// the Vecs.
    pub fn scan_view(&mut self) -> ScanView<'_> {
        ScanView {
            ready_at: &mut self.ready_at,
            act_ready_at: &mut self.act_ready_at,
            bank: &self.bank,
            row: &self.row,
            row_match: &self.row_match,
            hits_open: &self.hits_open,
            keep_open: &self.keep_open,
            entries: EntryView {
                bank: &self.bank,
                row: &self.row,
                chan: &self.chan,
                slot: &self.slot,
                arena: &self.arena,
                bank_count: &self.bank_count,
                indexer: self.indexer,
            },
        }
    }

    /// Per-bank occupancy count (flat bank index order). Exposed so oracle
    /// tests can cross-check the counts against a from-scratch recount.
    pub fn bank_counts(&self) -> &[u16] {
        &self.bank_count
    }

    /// Bank-occupancy bitmask words (flat bank index order; bit `b & 63` of
    /// word `b >> 6` is set iff `bank_counts()[b] > 0`). Exposed so oracle
    /// tests can cross-check the mask against a from-scratch recount.
    pub fn pending_mask_words(&self) -> &[u64] {
        &self.pending_mask
    }

    /// Per-entry row-match flags (position order; 1 iff the entry's row is
    /// open in its bank). Exposed so oracle tests can cross-check the
    /// incrementally maintained flags against a from-scratch recompute.
    pub fn row_match_flags(&self) -> &[u8] {
        &self.row_match
    }

    /// Per-bank open-row-hit counts (flat bank index order). Exposed so
    /// oracle tests can cross-check against a from-scratch recount.
    pub fn open_row_hits(&self) -> &[u16] {
        &self.hits_open
    }

    /// Per-entry keep-open flags (position order; 1 iff the entry's bank is
    /// open and still has a pending open-row hit). Exposed so oracle tests
    /// can cross-check against a from-scratch recompute.
    pub fn keep_open_flags(&self) -> &[u8] {
        &self.keep_open
    }

    /// Record an occupancy sample (typically once per scheduling cycle).
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.slot.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Mean sampled occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Age (in ns) of the oldest entry relative to `now`, or 0 if empty.
    pub fn oldest_age(&self, now: Cycle) -> Cycle {
        self.oldest()
            .map(|e| now.saturating_sub(e.request.arrival))
            .unwrap_or(0)
    }

    /// Count entries of the given kind.
    pub fn count_kind(&self, kind: RequestKind) -> usize {
        self.iter().filter(|e| e.request.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indexer() -> BankIndexer {
        BankIndexer::new(&Organization::hbm4())
    }

    fn queue(capacity: usize) -> RequestQueue {
        RequestQueue::new(capacity, indexer())
    }

    fn entry(id: u64, addr: u64, row: u32, bank: u8, arrival: Cycle) -> QueueEntry {
        QueueEntry {
            request: MemoryRequest::read(id, addr, 32, arrival),
            dram: DramAddress::new(0, BankAddress::new(0, 0, 0, bank), row, 0),
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = queue(2);
        assert!(q.push(entry(1, 0, 0, 0, 0)));
        assert!(q.push(entry(2, 32, 0, 0, 0)));
        assert!(q.is_full());
        assert!(!q.push(entry(3, 64, 0, 0, 0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        queue(0);
    }

    #[test]
    fn oldest_first_ordering_and_removal() {
        let mut q = queue(8);
        q.push(entry(1, 0, 0, 0, 10));
        q.push(entry(2, 32, 1, 1, 20));
        q.push(entry(3, 64, 0, 0, 30));
        assert_eq!(q.oldest().unwrap().request.id.0, 1);
        let idx = q.find_oldest(|e| e.dram.bank.bank == 1).unwrap();
        let removed = q.remove(idx).unwrap();
        assert_eq!(removed.request.id.0, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.oldest_age(100), 90);
    }

    #[test]
    fn row_hit_and_bank_lookups() {
        let mut q = queue(8);
        q.push(entry(1, 0, 7, 2, 0));
        let same_row = DramAddress::new(0, BankAddress::new(0, 0, 0, 2), 7, 5);
        let other_row = DramAddress::new(0, BankAddress::new(0, 0, 0, 2), 8, 5);
        let other_bank = DramAddress::new(0, BankAddress::new(0, 0, 0, 3), 7, 5);
        assert!(q.has_pending_row_hit(same_row));
        assert!(!q.has_pending_row_hit(other_row));
        assert!(q.has_pending_for_bank(other_row));
        assert!(!q.has_pending_for_bank(other_bank));
    }

    #[test]
    fn occupancy_statistics() {
        let mut q = queue(4);
        q.sample_occupancy();
        q.push(entry(1, 0, 0, 0, 0));
        q.push(entry(2, 32, 0, 0, 0));
        q.sample_occupancy();
        assert_eq!(q.mean_occupancy(), 1.0);
        assert_eq!(q.peak_occupancy(), 2);
        assert_eq!(q.count_kind(RequestKind::Read), 2);
        assert_eq!(q.count_kind(RequestKind::Write), 0);
    }

    #[test]
    fn empty_queue_defaults() {
        let q = queue(1);
        assert!(q.is_empty());
        assert_eq!(q.mean_occupancy(), 0.0);
        assert_eq!(q.oldest_age(55), 0);
        assert!(q.oldest().is_none());
    }

    #[test]
    fn hot_arrays_track_entries_through_churn() {
        // Push/remove churn with arena-slot reuse: the packed bank/row
        // arrays, per-bank counts, and mask must stay aligned with the
        // arena-backed entries at every step.
        let mut q = queue(8);
        let check = |q: &RequestQueue| {
            let mut counts = vec![0u16; q.indexer.banks()];
            for (i, e) in q.iter().enumerate() {
                let flat = q.indexer.flat(e.dram.bank);
                assert_eq!(q.bank_at(i), flat);
                assert_eq!(q.row_at(i), e.dram.row);
                counts[flat] += 1;
            }
            assert_eq!(q.bank_counts(), counts.as_slice());
            for (w, word) in q.pending_mask_words().iter().enumerate() {
                for b in 0..64 {
                    let flat = w * 64 + b;
                    let expect = flat < counts.len() && counts[flat] > 0;
                    assert_eq!(word >> b & 1 == 1, expect, "mask bit {flat}");
                }
            }
        };
        for i in 0..6u64 {
            q.push(entry(i, i * 32, (i % 3) as u32, (i % 4) as u8, i));
            check(&q);
        }
        for _ in 0..3 {
            q.remove(1);
            check(&q);
        }
        for i in 6..10u64 {
            q.push(entry(i, i * 32, 9, (i % 2) as u8, i));
            check(&q);
        }
        while !q.is_empty() {
            q.remove(q.len() - 1);
            check(&q);
        }
    }

    #[test]
    fn ready_hints_follow_their_entry_positions() {
        let mut q = queue(4);
        q.push(entry(1, 0, 0, 0, 0));
        q.push(entry(2, 32, 1, 1, 0));
        q.push(entry(3, 64, 2, 2, 0));
        q.set_ready_hint(1, 500);
        q.set_act_ready_hint(2, 700);
        // Removing position 0 shifts the hints down with their entries.
        q.remove(0);
        assert_eq!(q.ready_hint(0), 500);
        assert_eq!(q.act_ready_hint(1), 700);
        assert_eq!(q.ready_hint(1), 0);
    }
}
