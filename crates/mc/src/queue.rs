//! Request queues.
//!
//! Conventional memory controllers hold in-flight requests in
//! content-addressable (CAM) structures so that a ready request targeting any
//! bank can be located in one cycle (§II-D). This module models that queue:
//! bounded capacity, oldest-first iteration, and lookup by DRAM coordinates.
//! The queue size is one of the five components the paper's Table IV claims
//! RoMe shrinks, so occupancy statistics are tracked here.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use rome_hbm::address::DramAddress;
use rome_hbm::units::Cycle;

use crate::request::{MemoryRequest, RequestKind};

/// An entry in the request queue: the request plus its decoded DRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// The pending request (fragment).
    pub request: MemoryRequest,
    /// Its decoded DRAM coordinates.
    pub dram: DramAddress,
}

/// One queue slot: the entry plus its ready-cache bounds. Keeping the
/// bounds inside the slot (rather than in parallel containers) makes it
/// impossible for an entry and its cached bounds to fall out of alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct QueueSlot {
    entry: QueueEntry,
    /// Cached lower bound on the earliest cycle the entry's column command
    /// can issue (0 = unknown). Because DRAM timing constraints only ever
    /// move *later* as commands are recorded, a bound computed once stays a
    /// valid lower bound for the entry's lifetime, so the FR-FCFS scan can
    /// skip the entry with one comparison until its cached cycle arrives
    /// instead of re-evaluating the full constraint engine every tick.
    ready_at: Cycle,
    /// Cached lower bound on the earliest cycle an ACT for the entry's bank
    /// can issue (0 = unknown). Same monotonicity argument as `ready_at`.
    act_ready_at: Cycle,
}

/// A bounded, age-ordered request queue with CAM-style lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestQueue {
    entries: VecDeque<QueueSlot>,
    capacity: usize,
    /// Sum of occupancy samples (one per `sample_occupancy` call).
    occupancy_sum: u64,
    /// Number of occupancy samples taken.
    occupancy_samples: u64,
    /// Maximum occupancy ever observed.
    peak_occupancy: usize,
}

impl RequestQueue {
    /// Create a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "request queue capacity must be non-zero");
        RequestQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            occupancy_sum: 0,
            occupancy_samples: 0,
            peak_occupancy: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Attempt to enqueue an entry; returns `false` (and leaves the entry
    /// with the caller) if the queue is full.
    pub fn push(&mut self, entry: QueueEntry) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push_back(QueueSlot {
            entry,
            ready_at: 0,
            act_ready_at: 0,
        });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        true
    }

    /// The entry at `index` (oldest first), if any.
    pub fn get(&self, index: usize) -> Option<&QueueEntry> {
        self.entries.get(index).map(|s| &s.entry)
    }

    /// The cached ready bound of the entry at `index` (0 = unknown).
    pub fn ready_hint(&self, index: usize) -> Cycle {
        self.entries.get(index).map_or(0, |s| s.ready_at)
    }

    /// Cache a lower bound on the earliest issue cycle of the entry at
    /// `index`. The bound must remain valid for the lifetime of the entry
    /// (DRAM timing constraints are monotone, so any bound read from the
    /// constraint engine qualifies).
    pub fn set_ready_hint(&mut self, index: usize, at: Cycle) {
        if let Some(slot) = self.entries.get_mut(index) {
            slot.ready_at = at;
        }
    }

    /// The cached ACT-ready bound of the entry at `index` (0 = unknown).
    pub fn act_ready_hint(&self, index: usize) -> Cycle {
        self.entries.get(index).map_or(0, |s| s.act_ready_at)
    }

    /// Cache a lower bound on the earliest ACT issue cycle for the entry at
    /// `index` (see [`RequestQueue::set_ready_hint`] for the validity
    /// argument).
    pub fn set_act_ready_hint(&mut self, index: usize, at: Cycle) {
        if let Some(slot) = self.entries.get_mut(index) {
            slot.act_ready_at = at;
        }
    }

    /// Iterate over the entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter().map(|s| &s.entry)
    }

    /// The oldest entry, if any.
    pub fn oldest(&self) -> Option<&QueueEntry> {
        self.entries.front().map(|s| &s.entry)
    }

    /// Find the oldest entry matching `pred` and return its position.
    pub fn find_oldest<F: Fn(&QueueEntry) -> bool>(&self, pred: F) -> Option<usize> {
        self.entries.iter().position(|s| pred(&s.entry))
    }

    /// Remove and return the entry at `index` (as returned by
    /// [`RequestQueue::find_oldest`]).
    pub fn remove(&mut self, index: usize) -> Option<QueueEntry> {
        self.entries.remove(index).map(|s| s.entry)
    }

    /// Whether any queued entry targets the same bank and row as `addr`
    /// (used by the adaptive page policy to decide whether to keep a row
    /// open).
    pub fn has_pending_row_hit(&self, addr: DramAddress) -> bool {
        self.entries.iter().any(|s| {
            let e = &s.entry;
            e.dram.channel == addr.channel && e.dram.bank == addr.bank && e.dram.row == addr.row
        })
    }

    /// Whether any queued entry targets the given bank.
    pub fn has_pending_for_bank(&self, addr: DramAddress) -> bool {
        self.entries
            .iter()
            .any(|s| s.entry.dram.channel == addr.channel && s.entry.dram.bank == addr.bank)
    }

    /// Record an occupancy sample (typically once per scheduling cycle).
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.entries.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Mean sampled occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Age (in ns) of the oldest entry relative to `now`, or 0 if empty.
    pub fn oldest_age(&self, now: Cycle) -> Cycle {
        self.entries
            .front()
            .map(|s| now.saturating_sub(s.entry.request.arrival))
            .unwrap_or(0)
    }

    /// Count entries of the given kind.
    pub fn count_kind(&self, kind: RequestKind) -> usize {
        self.entries
            .iter()
            .filter(|s| s.entry.request.kind == kind)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_hbm::address::BankAddress;

    fn entry(id: u64, addr: u64, row: u32, bank: u8, arrival: Cycle) -> QueueEntry {
        QueueEntry {
            request: MemoryRequest::read(id, addr, 32, arrival),
            dram: DramAddress::new(0, BankAddress::new(0, 0, 0, bank), row, 0),
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = RequestQueue::new(2);
        assert!(q.push(entry(1, 0, 0, 0, 0)));
        assert!(q.push(entry(2, 32, 0, 0, 0)));
        assert!(q.is_full());
        assert!(!q.push(entry(3, 64, 0, 0, 0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        RequestQueue::new(0);
    }

    #[test]
    fn oldest_first_ordering_and_removal() {
        let mut q = RequestQueue::new(8);
        q.push(entry(1, 0, 0, 0, 10));
        q.push(entry(2, 32, 1, 1, 20));
        q.push(entry(3, 64, 0, 0, 30));
        assert_eq!(q.oldest().unwrap().request.id.0, 1);
        let idx = q.find_oldest(|e| e.dram.bank.bank == 1).unwrap();
        let removed = q.remove(idx).unwrap();
        assert_eq!(removed.request.id.0, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.oldest_age(100), 90);
    }

    #[test]
    fn row_hit_and_bank_lookups() {
        let mut q = RequestQueue::new(8);
        q.push(entry(1, 0, 7, 2, 0));
        let same_row = DramAddress::new(0, BankAddress::new(0, 0, 0, 2), 7, 5);
        let other_row = DramAddress::new(0, BankAddress::new(0, 0, 0, 2), 8, 5);
        let other_bank = DramAddress::new(0, BankAddress::new(0, 0, 0, 3), 7, 5);
        assert!(q.has_pending_row_hit(same_row));
        assert!(!q.has_pending_row_hit(other_row));
        assert!(q.has_pending_for_bank(other_row));
        assert!(!q.has_pending_for_bank(other_bank));
    }

    #[test]
    fn occupancy_statistics() {
        let mut q = RequestQueue::new(4);
        q.sample_occupancy();
        q.push(entry(1, 0, 0, 0, 0));
        q.push(entry(2, 32, 0, 0, 0));
        q.sample_occupancy();
        assert_eq!(q.mean_occupancy(), 1.0);
        assert_eq!(q.peak_occupancy(), 2);
        assert_eq!(q.count_kind(RequestKind::Read), 2);
        assert_eq!(q.count_kind(RequestKind::Write), 0);
    }

    #[test]
    fn empty_queue_defaults() {
        let q = RequestQueue::new(1);
        assert!(q.is_empty());
        assert_eq!(q.mean_occupancy(), 0.0);
        assert_eq!(q.oldest_age(55), 0);
        assert!(q.oldest().is_none());
    }
}
