//! Synthetic workload generators.
//!
//! These produce request streams used by the microbenchmark-style
//! experiments: streaming reads/writes (the LLM-like pattern), strided
//! accesses, and uniformly random accesses (the pattern row-granularity
//! access is *not* designed for, used by the overfetch ablation).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::request::MemoryRequest;

/// Generate `total_bytes / granularity` sequential read requests starting at
/// `base`, each of `granularity` bytes, all arriving at cycle 0.
pub fn streaming_reads(base: u64, total_bytes: u64, granularity: u64) -> Vec<MemoryRequest> {
    assert!(granularity > 0);
    let count = total_bytes / granularity;
    (0..count)
        .map(|i| MemoryRequest::read(i, base + i * granularity, granularity, 0))
        .collect()
}

/// Generate sequential write requests (see [`streaming_reads`]).
pub fn streaming_writes(base: u64, total_bytes: u64, granularity: u64) -> Vec<MemoryRequest> {
    assert!(granularity > 0);
    let count = total_bytes / granularity;
    (0..count)
        .map(|i| MemoryRequest::write(i, base + i * granularity, granularity, 0))
        .collect()
}

/// Generate a read-dominated mix: one write every `write_period` requests.
pub fn read_write_mix(
    base: u64,
    total_bytes: u64,
    granularity: u64,
    write_period: u64,
) -> Vec<MemoryRequest> {
    assert!(granularity > 0 && write_period > 0);
    let count = total_bytes / granularity;
    (0..count)
        .map(|i| {
            let addr = base + i * granularity;
            if i % write_period == write_period - 1 {
                MemoryRequest::write(i, addr, granularity, 0)
            } else {
                MemoryRequest::read(i, addr, granularity, 0)
            }
        })
        .collect()
}

/// Generate strided reads: `count` requests of `granularity` bytes, spaced
/// `stride` bytes apart.
pub fn strided_reads(base: u64, count: u64, granularity: u64, stride: u64) -> Vec<MemoryRequest> {
    (0..count)
        .map(|i| MemoryRequest::read(i, base + i * stride, granularity, 0))
        .collect()
}

/// Generate uniformly random reads within `[base, base + span)`, aligned to
/// `granularity`. Deterministic for a given `seed`.
pub fn random_reads(
    base: u64,
    span: u64,
    count: u64,
    granularity: u64,
    seed: u64,
) -> Vec<MemoryRequest> {
    assert!(granularity > 0 && span >= granularity);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let slots = span / granularity;
    (0..count)
        .map(|i| {
            let slot = rng.gen_range(0..slots);
            MemoryRequest::read(i, base + slot * granularity, granularity, 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    #[test]
    fn streaming_reads_cover_the_range_contiguously() {
        let reqs = streaming_reads(0x1000, 1024, 32);
        assert_eq!(reqs.len(), 32);
        assert_eq!(reqs[0].address.raw(), 0x1000);
        assert_eq!(reqs[31].address.raw(), 0x1000 + 31 * 32);
        assert!(reqs
            .iter()
            .all(|r| r.kind == RequestKind::Read && r.bytes == 32));
    }

    #[test]
    fn streaming_writes_are_writes() {
        let reqs = streaming_writes(0, 128, 32);
        assert_eq!(reqs.len(), 4);
        assert!(reqs.iter().all(|r| r.kind == RequestKind::Write));
    }

    #[test]
    fn mix_has_expected_write_fraction() {
        let reqs = read_write_mix(0, 32 * 100, 32, 4);
        let writes = reqs.iter().filter(|r| r.kind == RequestKind::Write).count();
        assert_eq!(writes, 25);
    }

    #[test]
    fn strided_reads_respect_stride() {
        let reqs = strided_reads(0, 10, 32, 4096);
        assert_eq!(reqs[1].address.raw(), 4096);
        assert_eq!(reqs[9].address.raw(), 9 * 4096);
    }

    #[test]
    fn random_reads_are_deterministic_and_aligned() {
        let a = random_reads(0, 1 << 20, 100, 32, 7);
        let b = random_reads(0, 1 << 20, 100, 32, 7);
        let c = random_reads(0, 1 << 20, 100, 32, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|r| r.address.raw() % 32 == 0 && r.address.raw() < (1 << 20)));
    }
}
