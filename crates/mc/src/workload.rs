//! Synthetic workload generators.
//!
//! These produce request streams used by the microbenchmark-style
//! experiments: streaming reads/writes (the LLM-like pattern), strided
//! accesses, and uniformly random accesses (the pattern row-granularity
//! access is *not* designed for, used by the overfetch ablation).
//!
//! The implementations live in `rome_workload::synthetic` (the streaming
//! workload subsystem, which also builds its lazy [`TrafficSource`]
//! generators on them); this module re-exports them so every existing
//! call site keeps its exact signature and request stream. Streams whose
//! `total_bytes` is not a multiple of `granularity` end in a partial tail
//! request (they used to be silently truncated); exact multiples are
//! bit-identical to the original generators.
//!
//! [`TrafficSource`]: rome_engine::source::TrafficSource

pub use rome_workload::synthetic::{
    random_reads, read_write_mix, streaming_reads, streaming_writes, strided_reads,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    #[test]
    fn streaming_reads_cover_the_range_contiguously() {
        let reqs = streaming_reads(0x1000, 1024, 32);
        assert_eq!(reqs.len(), 32);
        assert_eq!(reqs[0].address.raw(), 0x1000);
        assert_eq!(reqs[31].address.raw(), 0x1000 + 31 * 32);
        assert!(reqs
            .iter()
            .all(|r| r.kind == RequestKind::Read && r.bytes == 32));
    }

    #[test]
    fn streaming_writes_are_writes() {
        let reqs = streaming_writes(0, 128, 32);
        assert_eq!(reqs.len(), 4);
        assert!(reqs.iter().all(|r| r.kind == RequestKind::Write));
    }

    #[test]
    fn mix_has_expected_write_fraction() {
        let reqs = read_write_mix(0, 32 * 100, 32, 4);
        let writes = reqs.iter().filter(|r| r.kind == RequestKind::Write).count();
        assert_eq!(writes, 25);
    }

    #[test]
    fn strided_reads_respect_stride() {
        let reqs = strided_reads(0, 10, 32, 4096);
        assert_eq!(reqs[1].address.raw(), 4096);
        assert_eq!(reqs[9].address.raw(), 9 * 4096);
    }

    #[test]
    fn random_reads_are_deterministic_and_aligned() {
        let a = random_reads(0, 1 << 20, 100, 32, 7);
        let b = random_reads(0, 1 << 20, 100, 32, 7);
        let c = random_reads(0, 1 << 20, 100, 32, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|r| r.address.raw() % 32 == 0 && r.address.raw() < (1 << 20)));
    }

    #[test]
    fn partial_tail_is_emitted_not_truncated() {
        // Regression: 100 B at 32 B granularity used to silently drop the
        // final 4 bytes; the stream must now cover the whole range.
        let reqs = streaming_reads(0, 100, 32);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[3].bytes, 4);
        assert_eq!(reqs.iter().map(|r| r.bytes).sum::<u64>(), 100);
        let writes = streaming_writes(0, 100, 32);
        assert_eq!(writes.iter().map(|r| r.bytes).sum::<u64>(), 100);
        let mix = read_write_mix(0, 100, 32, 4);
        assert_eq!(mix.iter().map(|r| r.bytes).sum::<u64>(), 100);
    }
}
