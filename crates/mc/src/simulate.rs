//! Simulation drivers for a single channel controller.
//!
//! These helpers feed a request stream into a [`ChannelController`] as fast
//! as its queues accept it and summarize the outcome. They are used directly
//! by the queue-depth and VBA design-space experiments and as calibration
//! kernels by `rome-sim`.
//!
//! # Event-driven time skipping
//!
//! The default driver ([`run_to_completion`] / [`run_with_limit`]) is
//! *event-driven*: after a tick in which the controller issued nothing and no
//! new request can arrive, it asks [`ChannelController::next_event_at`] for
//! the next cycle at which any state can change (a data burst completing, a
//! timing constraint expiring, a refresh coming due) and jumps straight
//! there, instead of burning one no-op `tick` per nanosecond. Because
//! `next_event_at` lower-bounds the next state change, the event-driven
//! driver executes the exact command schedule of the cycle-stepped loop and
//! produces bit-identical [`SimulationReport`]s — the regression suite in
//! `tests/event_driven_equivalence.rs` pins this.
//!
//! The original cycle-by-cycle loop is kept as [`run_with_limit_stepped`];
//! it is the equivalence baseline and the reference point for the wall-clock
//! speedup tracked by the `event_driven_speedup` bench.

use serde::{Deserialize, Serialize};

use rome_hbm::units::{bytes_per_ns_to_gbps, Cycle};

use crate::controller::ChannelController;
use crate::request::{MemoryRequest, RequestKind};

/// Summary of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Total requests completed.
    pub requests_completed: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Cycle at which the last request completed.
    pub finish_time: Cycle,
    /// Achieved bandwidth over the whole run in decimal GB/s (1 byte/ns =
    /// 1 GB/s), via [`rome_hbm::units::bytes_per_ns_to_gbps`].
    pub achieved_bandwidth_gbps: f64,
    /// Mean read latency in ns.
    pub mean_read_latency: f64,
    /// Row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Activations issued per kilobyte transferred.
    pub activates_per_kib: f64,
}

/// Drive `controller` with `requests`, enqueueing as fast as the queues
/// accept, until every request has completed or an internal safety limit of
/// 50 ms elapses.
///
/// Requests are offered in order; a request whose queue is full simply waits
/// (back-pressure), which is how a DMA engine behaves.
pub fn run_to_completion(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
) -> SimulationReport {
    run_with_limit(controller, requests, 50_000_000)
}

/// Like [`run_to_completion`] but with an explicit time limit in ns.
/// Event-driven: skips directly between cycles where state can change.
pub fn run_with_limit(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> SimulationReport {
    drive(controller, requests, max_ns, false)
}

/// The original cycle-by-cycle driver: identical behaviour to
/// [`run_with_limit`], advancing time one nanosecond per iteration. Kept as
/// the equivalence baseline and for wall-clock comparison benches.
pub fn run_with_limit_stepped(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> SimulationReport {
    drive(controller, requests, max_ns, true)
}

fn drive(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
    stepped: bool,
) -> SimulationReport {
    let total = requests.len() as u64;
    let mut pending = requests.into_iter().peekable();
    let mut now: Cycle = 0;
    let mut completed = 0u64;
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;
    let mut completions = Vec::new();

    while (completed < total || !controller.is_idle()) && now < max_ns {
        // Offer as many pending requests as the queues accept this cycle.
        while let Some(next) = pending.peek() {
            let accepted = match next.kind {
                RequestKind::Read => controller.read_slots_free() > 0,
                RequestKind::Write => controller.write_slots_free() > 0,
            };
            if !accepted {
                break;
            }
            let mut req = *next;
            req.arrival = now;
            let ok = controller.enqueue(req);
            debug_assert!(ok, "enqueue must succeed when a slot is free");
            pending.next();
        }
        let issued = controller.tick_into(now, &mut completions);
        for done in completions.drain(..) {
            completed += 1;
            finish_time = finish_time.max(done.completed);
            match done.kind {
                RequestKind::Read => bytes_read += done.bytes,
                RequestKind::Write => bytes_written += done.bytes,
            }
        }
        // A request can arrive at now + 1 only if the head of the pending
        // stream already has a free slot (back-pressure is in order).
        let arrival_next = pending.peek().is_some_and(|next| match next.kind {
            RequestKind::Read => controller.read_slots_free() > 0,
            RequestKind::Write => controller.write_slots_free() > 0,
        });
        now = if stepped || issued || arrival_next {
            now + 1
        } else {
            controller
                .next_event_at(now)
                .map_or(now + 1, |t| t.max(now + 1))
        };
    }

    let elapsed = finish_time.max(1);
    let stats = controller.stats();
    SimulationReport {
        requests_completed: completed,
        bytes_read,
        bytes_written,
        finish_time,
        achieved_bandwidth_gbps: bytes_per_ns_to_gbps(bytes_read + bytes_written, elapsed),
        mean_read_latency: stats.mean_read_latency(),
        row_hit_rate: stats.row_hit_rate(),
        activates_per_kib: if bytes_read + bytes_written == 0 {
            0.0
        } else {
            stats.dram.activates as f64 / ((bytes_read + bytes_written) as f64 / 1024.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::workload;

    #[test]
    fn streaming_read_run_reports_consistent_totals() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 16 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.requests_completed, 512);
        assert_eq!(report.bytes_read, 16 * 1024);
        assert_eq!(report.bytes_written, 0);
        assert!(report.achieved_bandwidth_gbps > 20.0);
        assert!(report.mean_read_latency > 0.0);
        assert!(report.finish_time > 0);
    }

    #[test]
    fn deeper_queues_do_not_reduce_bandwidth() {
        let reqs = workload::streaming_reads(0, 32 * 1024, 32);
        let mut shallow = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(4));
        let mut deep = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(64));
        let r_shallow = run_to_completion(&mut shallow, reqs.clone());
        let r_deep = run_to_completion(&mut deep, reqs);
        assert!(
            r_deep.achieved_bandwidth_gbps >= r_shallow.achieved_bandwidth_gbps * 0.95,
            "deep {} vs shallow {}",
            r_deep.achieved_bandwidth_gbps,
            r_shallow.achieved_bandwidth_gbps
        );
    }

    #[test]
    fn time_limit_is_respected() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 1 << 20, 32);
        let report = run_with_limit(&mut ctrl, reqs, 500);
        assert!(report.finish_time <= 500 + 64);
        assert!(report.requests_completed < 32 * 1024);
    }

    #[test]
    fn write_stream_reports_written_bytes() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_writes(0, 4 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.bytes_written, 4 * 1024);
        assert_eq!(report.bytes_read, 0);
    }

    #[test]
    fn bandwidth_is_decimal_gb_per_second_of_useful_bytes() {
        // Pin the unit definition: achieved GB/s is total useful bytes
        // divided by elapsed ns (1 byte/ns == 1 decimal GB/s), exactly
        // rome_hbm::units::bytes_per_ns_to_gbps. rome-core uses the same
        // helper, so the two systems report identically-defined numbers.
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let report = run_to_completion(&mut ctrl, workload::streaming_reads(0, 8 * 1024, 32));
        let expected =
            (report.bytes_read + report.bytes_written) as f64 / report.finish_time.max(1) as f64;
        assert_eq!(report.achieved_bandwidth_gbps, expected);
        assert_eq!(bytes_per_ns_to_gbps(32, 1), 32.0);
    }

    #[test]
    fn event_driven_matches_stepped_on_a_small_stream() {
        let reqs = workload::streaming_reads(0, 8 * 1024, 32);
        let mut a = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut b = ChannelController::new(ControllerConfig::hbm4_baseline());
        let fast = run_with_limit(&mut a, reqs.clone(), 1_000_000);
        let slow = run_with_limit_stepped(&mut b, reqs, 1_000_000);
        assert_eq!(fast, slow);
    }
}
