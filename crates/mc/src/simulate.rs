//! Simulation drivers for a single channel controller.
//!
//! Since the engine extraction these are the *generic* event-driven drivers
//! of [`rome_engine::simulate`], re-exported here for backwards
//! compatibility: [`ChannelController`](crate::controller::ChannelController)
//! implements [`rome_engine::MemoryController`], so
//! `rome_mc::simulate::run_with_limit(&mut ctrl, …)` is simply the generic
//! loop instantiated for the conventional controller. See the engine module
//! for the event-driven contract and the equivalence guarantees; the
//! regression suite in `tests/event_driven_equivalence.rs` pins bit-identical
//! [`SimulationReport`]s between the event-driven and cycle-stepped drivers
//! (with the FR-FCFS ready cache both on and off).

pub use rome_engine::simulate::{
    run_to_completion, run_with_budget, run_with_limit, run_with_limit_stepped, run_with_source,
    run_with_source_budgeted, SimulationReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ChannelController, ControllerConfig};
    use crate::workload;
    use rome_hbm::units::bytes_per_ns_to_gbps;

    #[test]
    fn streaming_read_run_reports_consistent_totals() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 16 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.requests_completed, 512);
        assert_eq!(report.bytes_read, 16 * 1024);
        assert_eq!(report.bytes_written, 0);
        // No overfetch at cache-line granularity.
        assert_eq!(report.bytes_transferred, 16 * 1024);
        assert!(report.achieved_bandwidth_gbps > 20.0);
        assert!(report.mean_read_latency > 0.0);
        assert!(report.finish_time > 0);
    }

    #[test]
    fn deeper_queues_do_not_reduce_bandwidth() {
        let reqs = workload::streaming_reads(0, 32 * 1024, 32);
        let mut shallow = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(4));
        let mut deep = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(64));
        let r_shallow = run_to_completion(&mut shallow, reqs.clone());
        let r_deep = run_to_completion(&mut deep, reqs);
        assert!(
            r_deep.achieved_bandwidth_gbps >= r_shallow.achieved_bandwidth_gbps * 0.95,
            "deep {} vs shallow {}",
            r_deep.achieved_bandwidth_gbps,
            r_shallow.achieved_bandwidth_gbps
        );
    }

    #[test]
    fn time_limit_is_respected() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 1 << 20, 32);
        let report = run_with_limit(&mut ctrl, reqs, 500);
        assert!(report.finish_time <= 500 + 64);
        assert!(report.requests_completed < 32 * 1024);
    }

    #[test]
    fn write_stream_reports_written_bytes() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_writes(0, 4 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.bytes_written, 4 * 1024);
        assert_eq!(report.bytes_read, 0);
    }

    #[test]
    fn bandwidth_is_decimal_gb_per_second_of_useful_bytes() {
        // Pin the unit definition: achieved GB/s is total useful bytes
        // divided by elapsed ns (1 byte/ns == 1 decimal GB/s), exactly
        // rome_hbm::units::bytes_per_ns_to_gbps. rome-core uses the same
        // generic driver, so the two systems report identically-defined
        // numbers.
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let report = run_to_completion(&mut ctrl, workload::streaming_reads(0, 8 * 1024, 32));
        let expected =
            (report.bytes_read + report.bytes_written) as f64 / report.finish_time.max(1) as f64;
        assert_eq!(report.achieved_bandwidth_gbps, expected);
        assert_eq!(bytes_per_ns_to_gbps(32, 1), 32.0);
    }

    #[test]
    fn event_driven_matches_stepped_on_a_small_stream() {
        let reqs = workload::streaming_reads(0, 8 * 1024, 32);
        let mut a = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut b = ChannelController::new(ControllerConfig::hbm4_baseline());
        let fast = run_with_limit(&mut a, reqs.clone(), 1_000_000);
        let slow = run_with_limit_stepped(&mut b, reqs, 1_000_000);
        assert_eq!(fast, slow);
    }

    #[test]
    fn ready_cache_does_not_change_reports() {
        let reqs = workload::read_write_mix(0, 16 * 1024, 32, 4);
        let mut with_cache = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut without = {
            let mut cfg = ControllerConfig::hbm4_baseline();
            cfg.ready_cache = false;
            ChannelController::new(cfg)
        };
        let cached = run_with_limit(&mut with_cache, reqs.clone(), 1_000_000);
        let plain = run_with_limit(&mut without, reqs, 1_000_000);
        assert_eq!(cached, plain);
    }
}
