//! Simple simulation drivers for a single channel controller.
//!
//! These helpers feed a request stream into a [`ChannelController`] as fast
//! as its queues accept it, advance time cycle by cycle, and summarize the
//! outcome. They are used directly by the queue-depth and VBA design-space
//! experiments and as calibration kernels by `rome-sim`.

use serde::{Deserialize, Serialize};

use rome_hbm::units::Cycle;

use crate::controller::ChannelController;
use crate::request::{MemoryRequest, RequestKind};

/// Summary of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Total requests completed.
    pub requests_completed: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Cycle at which the last request completed.
    pub finish_time: Cycle,
    /// Achieved bandwidth in GB/s over the whole run.
    pub achieved_bandwidth_gbps: f64,
    /// Mean read latency in ns.
    pub mean_read_latency: f64,
    /// Row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Activations issued per kilobyte transferred.
    pub activates_per_kib: f64,
}

/// Drive `controller` with `requests`, enqueueing as fast as the queues
/// accept, until every request has completed or `max_ns` elapses.
///
/// Requests are offered in order; a request whose queue is full simply waits
/// (back-pressure), which is how a DMA engine behaves.
pub fn run_to_completion(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
) -> SimulationReport {
    run_with_limit(controller, requests, 50_000_000)
}

/// Like [`run_to_completion`] but with an explicit time limit in ns.
pub fn run_with_limit(
    controller: &mut ChannelController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> SimulationReport {
    let total = requests.len() as u64;
    let mut pending = requests.into_iter().peekable();
    let mut now: Cycle = 0;
    let mut completed = 0u64;
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;

    while (completed < total || !controller.is_idle()) && now < max_ns {
        // Offer as many pending requests as the queues accept this cycle.
        while let Some(next) = pending.peek() {
            let accepted = match next.kind {
                RequestKind::Read => controller.read_slots_free() > 0,
                RequestKind::Write => controller.write_slots_free() > 0,
            };
            if !accepted {
                break;
            }
            let mut req = *next;
            req.arrival = now;
            let ok = controller.enqueue(req);
            debug_assert!(ok, "enqueue must succeed when a slot is free");
            pending.next();
        }
        for done in controller.tick(now) {
            completed += 1;
            finish_time = finish_time.max(done.completed);
            match done.kind {
                RequestKind::Read => bytes_read += done.bytes,
                RequestKind::Write => bytes_written += done.bytes,
            }
        }
        now += 1;
    }

    let elapsed = finish_time.max(1);
    let stats = controller.stats();
    SimulationReport {
        requests_completed: completed,
        bytes_read,
        bytes_written,
        finish_time,
        achieved_bandwidth_gbps: (bytes_read + bytes_written) as f64 / elapsed as f64,
        mean_read_latency: stats.mean_read_latency(),
        row_hit_rate: stats.row_hit_rate(),
        activates_per_kib: if bytes_read + bytes_written == 0 {
            0.0
        } else {
            stats.dram.activates as f64 / ((bytes_read + bytes_written) as f64 / 1024.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::workload;

    #[test]
    fn streaming_read_run_reports_consistent_totals() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 16 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.requests_completed, 512);
        assert_eq!(report.bytes_read, 16 * 1024);
        assert_eq!(report.bytes_written, 0);
        assert!(report.achieved_bandwidth_gbps > 20.0);
        assert!(report.mean_read_latency > 0.0);
        assert!(report.finish_time > 0);
    }

    #[test]
    fn deeper_queues_do_not_reduce_bandwidth() {
        let reqs = workload::streaming_reads(0, 32 * 1024, 32);
        let mut shallow = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(4));
        let mut deep = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(64));
        let r_shallow = run_to_completion(&mut shallow, reqs.clone());
        let r_deep = run_to_completion(&mut deep, reqs);
        assert!(
            r_deep.achieved_bandwidth_gbps >= r_shallow.achieved_bandwidth_gbps * 0.95,
            "deep {} vs shallow {}",
            r_deep.achieved_bandwidth_gbps,
            r_shallow.achieved_bandwidth_gbps
        );
    }

    #[test]
    fn time_limit_is_respected() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_reads(0, 1 << 20, 32);
        let report = run_with_limit(&mut ctrl, reqs, 500);
        assert!(report.finish_time <= 500 + 64);
        assert!(report.requests_completed < 32 * 1024);
    }

    #[test]
    fn write_stream_reports_written_bytes() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
        let reqs = workload::streaming_writes(0, 4 * 1024, 32);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.bytes_written, 4 * 1024);
        assert_eq!(report.bytes_read, 0);
    }
}
