//! The conventional per-channel memory controller.
//!
//! This is the paper's baseline (§II-D): an FR-FCFS scheduler over CAM-style
//! read/write queues, per-bank state logic, an open-page (or configurable)
//! page policy, per-bank refresh, and age-based anti-starvation. Every DRAM
//! command it emits is validated by the cycle-accurate
//! [`rome_hbm::HbmChannel`] model, so illegal schedules cannot silently
//! inflate bandwidth.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use rome_engine::EventHorizon;
use rome_hbm::address::BankAddress;
use rome_hbm::channel::HbmChannel;
use rome_hbm::command::{CommandKind, CommandTarget, DramCommand};
use rome_hbm::organization::Organization;
use rome_hbm::refresh::{RefreshMode, RefreshScheduler};
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use crate::mapping::{AddressMapping, MappingScheme};
use crate::page_policy::PagePolicy;
use crate::queue::{QueueEntry, RequestQueue};
use crate::request::{CompletedRequest, MemoryRequest, RequestKind};
use crate::stats::ControllerStats;

/// Request-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-ready, first-come-first-served: row hits first, then oldest.
    #[default]
    FrFcfs,
    /// Strict first-come-first-served (no row-hit prioritization).
    Fcfs,
}

/// Configuration of a conventional channel controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// DRAM organization of the attached channel.
    pub organization: Organization,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Address mapping used when raw physical addresses are enqueued.
    pub mapping: MappingScheme,
    /// Read queue capacity (entries). The paper's baseline uses 64.
    pub read_queue_capacity: usize,
    /// Write queue capacity (entries).
    pub write_queue_capacity: usize,
    /// Page policy.
    pub page_policy: PagePolicy,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Refresh mode (per-bank in the paper's evaluation).
    pub refresh_mode: RefreshMode,
    /// Age in ns after which the oldest request preempts row-hit-first
    /// scheduling (QoS / anti-starvation).
    pub starvation_threshold: Cycle,
    /// Write-queue occupancy at which the controller switches to draining
    /// writes.
    pub write_drain_high: usize,
    /// Write-queue occupancy at which the controller returns to serving
    /// reads.
    pub write_drain_low: usize,
    /// Whether the FR-FCFS candidate scan uses the per-entry ready cache:
    /// earliest-issue bounds computed for blocked entries are remembered and
    /// each entry is skipped with one comparison until its cached cycle
    /// arrives, instead of re-evaluating the constraint engine every tick.
    /// DRAM timing constraints are monotone (issuing commands only moves
    /// earliest-issue times later), so the cache cannot change a single
    /// scheduling decision — the equivalence suite pins bit-identical
    /// reports with the cache on and off. Disable only to measure its
    /// effect.
    pub ready_cache: bool,
}

impl ControllerConfig {
    /// The HBM4 baseline configuration used throughout the paper's
    /// evaluation: 64-entry queues, FR-FCFS, open page, per-bank refresh.
    pub fn hbm4_baseline() -> Self {
        let organization = Organization::hbm4();
        ControllerConfig {
            organization,
            timing: TimingParams::hbm4(),
            mapping: MappingScheme::hbm4_streaming(organization, 1),
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            page_policy: PagePolicy::Open,
            scheduling: SchedulingPolicy::FrFcfs,
            refresh_mode: RefreshMode::PerBank,
            starvation_threshold: 2_000,
            write_drain_high: 48,
            write_drain_low: 16,
            ready_cache: true,
        }
    }

    /// Same as [`ControllerConfig::hbm4_baseline`] but with an explicit
    /// read/write queue capacity (used by the queue-depth experiment, §V-A).
    pub fn hbm4_with_queue_depth(depth: usize) -> Self {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.read_queue_capacity = depth;
        cfg.write_queue_capacity = depth;
        cfg.write_drain_high = (depth * 3 / 4).max(1);
        cfg.write_drain_low = depth / 4;
        cfg
    }
}

/// Bookkeeping for a request whose data transfer is in flight.
///
/// Ordered by `(data_complete_at, seq)` so the in-flight set can live in a
/// min-heap (wrapped in [`Reverse`]): completions pop in completion order,
/// the next completion time is a peek, and ties break on issue order, which
/// keeps the emission sequence deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    entry: QueueEntry,
    data_complete_at: Cycle,
    /// Monotone issue sequence number (tie-breaker for equal completion
    /// times).
    seq: u64,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.data_complete_at, self.seq).cmp(&(other.data_complete_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A conventional single-channel memory controller bound to a cycle-accurate
/// HBM channel model.
#[derive(Debug, Clone)]
pub struct ChannelController {
    config: ControllerConfig,
    channel: HbmChannel,
    read_queue: RequestQueue,
    write_queue: RequestQueue,
    /// In-flight data transfers, ordered by completion time (min-heap):
    /// completions are popped, never scanned, and the next completion time
    /// is an O(1) peek for [`ChannelController::next_event_at`].
    in_flight: BinaryHeap<Reverse<InFlight>>,
    /// Issue sequence counter feeding [`InFlight::seq`].
    inflight_seq: u64,
    refresh: Vec<RefreshScheduler>,
    /// Cached minimum of the refresh schedulers' `next_due` cycles, updated
    /// only when a refresh is acknowledged (the sole mutation that moves a
    /// due time). While it lies in the future it answers the refresh part of
    /// [`ChannelController::next_event_at`] with one comparison; once it is
    /// in the past (a refresh is due but postponed) the query falls back to
    /// the per-rank scan, which is the pre-calendar behaviour.
    refresh_due_min: Cycle,
    /// The controller's own per-bank state logic: open row per bank, indexed
    /// by the flat bank index.
    open_rows: Vec<Option<u32>>,
    write_drain: bool,
    /// A bank that has been precharged in preparation for an urgent refresh;
    /// the scheduler must not re-activate it until the refresh issues.
    refresh_reserved_bank: Option<BankAddress>,
    stats: ControllerStats,
    /// Earliest future cycle at which a command the scheduler wanted to
    /// issue this tick becomes timing-legal. Recorded as a byproduct of the
    /// tick's failed scheduling attempts (the scan already computes every
    /// candidate's earliest-issue time), so [`ChannelController::next_event_at`]
    /// needs no second scan. Only complete after a tick that issued nothing.
    event_hint: Cycle,
}

impl ChannelController {
    /// Create a controller from its configuration.
    pub fn new(config: ControllerConfig) -> Self {
        let org = config.organization;
        let channel = HbmChannel::new(org, config.timing);
        let ranks = (org.pseudo_channels as usize) * (org.stack_ids as usize);
        let banks_per_rank = (org.bank_groups * org.banks_per_group) as u32;
        let refresh: Vec<RefreshScheduler> = (0..ranks)
            .map(|_| RefreshScheduler::new(config.refresh_mode, &config.timing, banks_per_rank))
            .collect();
        let refresh_due_min = refresh
            .iter()
            .map(RefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
        ChannelController {
            read_queue: RequestQueue::new(config.read_queue_capacity),
            write_queue: RequestQueue::new(config.write_queue_capacity),
            in_flight: BinaryHeap::new(),
            inflight_seq: 0,
            refresh,
            refresh_due_min,
            open_rows: vec![None; org.banks_per_channel() as usize],
            write_drain: false,
            refresh_reserved_bank: None,
            stats: ControllerStats::new(),
            event_hint: Cycle::MAX,
            channel,
            config,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The controller statistics accumulated so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying channel model (for command/energy counters).
    pub fn channel(&self) -> &HbmChannel {
        &self.channel
    }

    /// Whether the controller has no pending or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.read_queue.is_empty() && self.write_queue.is_empty() && self.in_flight.is_empty()
    }

    /// Number of free read-queue slots.
    pub fn read_slots_free(&self) -> usize {
        self.read_queue.capacity() - self.read_queue.len()
    }

    /// Number of free write-queue slots.
    pub fn write_slots_free(&self) -> usize {
        self.write_queue.capacity() - self.write_queue.len()
    }

    /// Total free queue slots across both queues. Admission is still
    /// per-kind ([`ChannelController::read_slots_free`] /
    /// [`ChannelController::write_slots_free`]); this combined count mirrors
    /// `RomeController::slots_free` so both controllers satisfy
    /// [`rome_engine::MemoryController`] uniformly.
    pub fn slots_free(&self) -> usize {
        self.read_slots_free() + self.write_slots_free()
    }

    /// Enqueue a request given as a raw physical address, using the
    /// controller's own address mapping. Returns `false` if the relevant
    /// queue is full.
    pub fn enqueue(&mut self, request: MemoryRequest) -> bool {
        let dram = self.config.mapping.map(request.address);
        self.enqueue_mapped(QueueEntry { request, dram })
    }

    /// Enqueue a request whose DRAM coordinates were already decoded (used by
    /// the multi-channel memory system). Returns `false` if the queue is
    /// full.
    pub fn enqueue_mapped(&mut self, entry: QueueEntry) -> bool {
        match entry.request.kind {
            RequestKind::Read => self.read_queue.push(entry),
            RequestKind::Write => self.write_queue.push(entry),
        }
    }

    fn bank_index(&self, bank: BankAddress) -> usize {
        flat_bank_index(&self.config.organization, bank)
    }

    fn rank_index(&self, bank: BankAddress) -> usize {
        bank.pseudo_channel as usize * self.config.organization.stack_ids as usize
            + bank.stack_id as usize
    }

    /// Advance the controller by one nanosecond, returning any requests whose
    /// data transfer completed at or before `now`.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`ChannelController::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<CompletedRequest> {
        let mut completed = Vec::new();
        self.tick_into(now, &mut completed);
        completed
    }

    /// Advance the controller by one nanosecond, appending any requests whose
    /// data transfer completed at or before `now` to `completed`. Returns
    /// `true` if any DRAM command (row, column, or refresh) was issued.
    ///
    /// The controller may issue at most one row command (ACT/PRE/REF) and one
    /// column command (RD/WR) per pseudo channel per call, matching the
    /// separate row/column C/A buses of HBM.
    pub fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        self.stats.total_cycles += 1;
        self.read_queue.sample_occupancy();
        self.write_queue.sample_occupancy();
        self.event_hint = Cycle::MAX;

        self.collect_completions_into(now, completed);

        let had_work = !self.read_queue.is_empty() || !self.write_queue.is_empty();

        // Refresh has priority on the row bus; otherwise the scheduler may
        // use it for ACT/PRE below. The row and column C/A buses are
        // separate, so one row command and one column command may issue in
        // the same nanosecond.
        let issued_refresh = self.try_issue_refresh(now);

        self.update_write_drain();

        // The C/A bus runs fast enough to address both pseudo channels every
        // nanosecond, so up to one column and one row command per PC may be
        // issued per tick; per-PC tCCD/tRRD constraints prevent over-issue to
        // a single PC.
        let mut issued_col = false;
        for _ in 0..self.config.organization.pseudo_channels {
            if self.schedule_column(now) {
                issued_col = true;
            } else {
                break;
            }
        }
        let mut issued_row = false;
        if !issued_refresh {
            for _ in 0..self.config.organization.pseudo_channels {
                if self.schedule_row(now) {
                    issued_row = true;
                } else {
                    break;
                }
            }
        }

        if had_work && !issued_col && !issued_row && !issued_refresh {
            self.stats.stall_cycles += 1;
        } else if !had_work && self.in_flight.is_empty() {
            self.stats.idle_cycles += 1;
        }

        self.stats.mean_queue_occupancy = self.read_queue.mean_occupancy();
        self.stats.peak_queue_occupancy = self
            .stats
            .peak_queue_occupancy
            .max(self.read_queue.peak_occupancy());
        self.stats.dram = *self.channel.counters();
        issued_col || issued_row || issued_refresh
    }

    /// The next cycle strictly after `now` at which this controller's state
    /// can change on its own: a data transfer completing, a refresh becoming
    /// due (or, if pending, becoming urgent or issuable), a queued request's
    /// next command becoming timing-legal, or the oldest request crossing
    /// the starvation threshold. `None` when the controller is fully idle
    /// and no refresh is pending.
    ///
    /// Must be called immediately after a [`ChannelController::tick_into`]
    /// at the same `now` that issued nothing: the scheduling-derived part of
    /// the answer (`event_hint`) is accumulated during that tick's failed
    /// issue attempts, which makes this query cheap. The returned cycle is a
    /// *lower bound* on the next state change — an event-driven driver that
    /// ticks at every reported cycle executes the exact command schedule of
    /// a cycle-by-cycle driver, because nothing the scheduler consults
    /// changes between the reported cycles. Spurious events (a reported
    /// cycle where the scheduler still issues nothing) are harmless.
    ///
    /// The query is O(1) on the hot path: the scheduler's part is the
    /// accumulated `event_hint`, the in-flight part is a heap peek, the
    /// refresh part is the cached minimum refresh due time (with an
    /// O(ranks) fallback only while a due refresh is postponed), and the
    /// starvation part looks at each queue's head.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = EventHorizon::new(now);

        if self.event_hint != Cycle::MAX {
            horizon.consider(self.event_hint);
        }

        // Only the earliest in-flight completion can be the next event.
        if let Some(Reverse(inflight)) = self.in_flight.peek() {
            horizon.consider(inflight.data_complete_at);
        }

        // Refreshes not yet due wake the scheduler when they become due;
        // pending ones already recorded their issuability into the hint.
        if self.refresh_due_min > now {
            // No scheduler is due, so the cached minimum IS the earliest
            // refresh wakeup.
            horizon.consider(self.refresh_due_min);
        } else {
            for sched in &self.refresh {
                if !sched.due(now) {
                    horizon.consider(sched.next_due());
                }
            }
        }

        for queue in [&self.read_queue, &self.write_queue] {
            if let Some(oldest) = queue.oldest() {
                // Crossing the starvation threshold changes the scheduling
                // policy even when no timing constraint expires.
                horizon.consider(oldest.request.arrival + self.config.starvation_threshold + 1);
            }
        }

        horizon.earliest()
    }

    /// Refresh the cached minimum refresh due time after an acknowledge
    /// moved one scheduler's `next_due` forward.
    fn note_refresh_acknowledged(&mut self) {
        self.refresh_due_min = self
            .refresh
            .iter()
            .map(RefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Record a future cycle at which a command the scheduler wanted this
    /// tick becomes issuable.
    fn hint_event(&mut self, at: Cycle) {
        if at < self.event_hint {
            self.event_hint = at;
        }
    }

    fn collect_completions_into(&mut self, now: Cycle, done: &mut Vec<CompletedRequest>) {
        // The heap is ordered by completion time, so only due transfers are
        // ever touched — no scan over the rest of the in-flight set.
        while self
            .in_flight
            .peek()
            .is_some_and(|Reverse(f)| f.data_complete_at <= now)
        {
            let Reverse(inflight) = self.in_flight.pop().expect("peeked entry present");
            let req = inflight.entry.request;
            let completed = CompletedRequest {
                id: req.id,
                kind: req.kind,
                bytes: req.bytes,
                arrival: req.arrival,
                completed: inflight.data_complete_at,
            };
            match req.kind {
                RequestKind::Read => {
                    self.stats.reads_completed += 1;
                    self.stats.bytes_read += req.bytes;
                    self.stats.total_read_latency += completed.latency();
                    self.stats.max_read_latency =
                        self.stats.max_read_latency.max(completed.latency());
                }
                RequestKind::Write => {
                    self.stats.writes_completed += 1;
                    self.stats.bytes_written += req.bytes;
                }
            }
            done.push(completed);
        }
    }

    fn update_write_drain(&mut self) {
        if self.write_queue.len() >= self.config.write_drain_high
            || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        {
            self.write_drain = true;
        }
        if self.write_drain
            && (self.write_queue.len() <= self.config.write_drain_low
                || self.write_queue.is_empty())
            && !self.read_queue.is_empty()
        {
            self.write_drain = false;
        }
    }

    fn try_issue_refresh(&mut self, now: Cycle) -> bool {
        let org = self.config.organization;
        for pc in 0..org.pseudo_channels {
            for sid in 0..org.stack_ids {
                let rank = self.rank_index(BankAddress::new(pc, sid, 0, 0));
                if !self.refresh[rank].due(now) {
                    continue;
                }
                let urgent = self.refresh[rank].urgent(now);
                match self.config.refresh_mode {
                    RefreshMode::PerBank => {
                        // Identify the bank next in rotation without consuming it.
                        let banks_per_rank = (org.bank_groups * org.banks_per_group) as u32;
                        let probe = self.refresh[rank].issued() % banks_per_rank as u64;
                        let bg = (probe as u32 / org.banks_per_group as u32) as u8;
                        let ba = (probe as u32 % org.banks_per_group as u32) as u8;
                        let bank = BankAddress::new(pc, sid, bg, ba);
                        let target = CommandTarget::from_bank_address(bank);
                        let idx = self.bank_index(bank);
                        // Postpone a non-urgent refresh while requests are
                        // pending for this bank (the paper's "optionally
                        // postponing REFs based on each bank's state").
                        if !urgent {
                            let probe_addr = rome_hbm::address::DramAddress {
                                channel: 0,
                                bank,
                                row: 0,
                                column: 0,
                            };
                            if self.read_queue.has_pending_for_bank(probe_addr)
                                || self.write_queue.has_pending_for_bank(probe_addr)
                            {
                                // Postponed until the bank drains or the
                                // refresh becomes urgent.
                                self.hint_event(self.refresh[rank].urgent_at());
                                continue;
                            }
                        }
                        // If the bank has an open row, it must be precharged
                        // first; only force this when the refresh is urgent,
                        // otherwise wait for the scheduler to drain it.
                        if self.open_rows[idx].is_some() {
                            if urgent {
                                let pre = DramCommand::Pre { target };
                                if self.channel.can_issue(&pre, now) {
                                    self.channel.issue(pre, now).expect("checked");
                                    self.open_rows[idx] = None;
                                    // Keep the bank closed until the refresh
                                    // actually issues.
                                    self.refresh_reserved_bank = Some(bank);
                                    return true;
                                }
                                self.hint_event(self.channel.earliest_issue(&pre, now + 1));
                            } else {
                                self.hint_event(self.refresh[rank].urgent_at());
                            }
                            continue;
                        }
                        let refpb = DramCommand::RefPerBank { target };
                        if self.channel.can_issue(&refpb, now) {
                            self.channel.issue(refpb, now).expect("checked");
                            self.refresh[rank].acknowledge(now);
                            self.note_refresh_acknowledged();
                            self.stats.refreshes_issued += 1;
                            if self.refresh_reserved_bank == Some(bank) {
                                self.refresh_reserved_bank = None;
                            }
                            return true;
                        }
                        self.hint_event(self.channel.earliest_issue(&refpb, now + 1));
                        if urgent && self.refresh_reserved_bank.is_none() {
                            // Reserve the idle bank so the scheduler cannot
                            // open a row in it before the refresh becomes
                            // timing-legal.
                            self.refresh_reserved_bank = Some(bank);
                        }
                    }
                    RefreshMode::AllBank => {
                        let target = CommandTarget::bank(pc, sid, 0, 0);
                        // All banks of the rank must be precharged.
                        let any_open =
                            (0..(org.bank_groups * org.banks_per_group) as usize).any(|i| {
                                let base = self.bank_index(BankAddress::new(pc, sid, 0, 0));
                                self.open_rows[base + i].is_some()
                            });
                        if any_open {
                            if urgent {
                                let pre_all = DramCommand::PreAll { target };
                                if self.channel.can_issue(&pre_all, now) {
                                    self.channel.issue(pre_all, now).expect("checked");
                                    let base = self.bank_index(BankAddress::new(pc, sid, 0, 0));
                                    for i in 0..(org.bank_groups * org.banks_per_group) as usize {
                                        self.open_rows[base + i] = None;
                                    }
                                    return true;
                                }
                                self.hint_event(self.channel.earliest_issue(&pre_all, now + 1));
                            } else {
                                self.hint_event(self.refresh[rank].urgent_at());
                            }
                            continue;
                        }
                        let refab = DramCommand::RefAllBank { target };
                        if self.channel.can_issue(&refab, now) {
                            self.channel.issue(refab, now).expect("checked");
                            self.refresh[rank].acknowledge(now);
                            self.note_refresh_acknowledged();
                            self.stats.refreshes_issued += 1;
                            return true;
                        }
                        self.hint_event(self.channel.earliest_issue(&refab, now + 1));
                    }
                }
            }
        }
        false
    }

    fn active_queue(&self) -> &RequestQueue {
        if self.write_drain {
            &self.write_queue
        } else {
            &self.read_queue
        }
    }

    /// Try to issue a column command (RD/WR) for the active queue. Returns
    /// `true` if a command was issued.
    fn schedule_column(&mut self, now: Cycle) -> bool {
        let is_write_phase = self.write_drain;
        let starved = self.active_queue().oldest_age(now) > self.config.starvation_threshold;

        // Per-pseudo-channel gate: the PC scope bounds the earliest issue of
        // every column command on that PC, so a blocked PC disqualifies all
        // of its entries with one comparison instead of a full
        // earliest-issue evaluation each.
        let kind = if is_write_phase {
            CommandKind::Wr
        } else {
            CommandKind::Rd
        };
        const MAX_GATED_PCS: usize = 8;
        let pcs = self.config.organization.pseudo_channels as usize;
        let mut pc_bound = [0 as Cycle; MAX_GATED_PCS];
        if pcs <= MAX_GATED_PCS {
            for (pc, bound) in pc_bound.iter_mut().enumerate().take(pcs) {
                *bound = self.channel.pseudo_channel_bound(kind, pc as u8);
            }
        }

        // Gather the candidate index: oldest entry whose row is open and
        // whose column command is issuable now. Entries blocked only by
        // timing feed the event hint with (a lower bound on) their
        // earliest-issue cycle.
        //
        // Ready cache: a bound computed for a blocked entry is stored in the
        // queue and the entry is skipped with one comparison on subsequent
        // scans until the bound's cycle arrives. Timing constraints are
        // monotone — issuing commands only pushes earliest-issue times later
        // — so a stored bound stays a valid lower bound for the entry's
        // lifetime and the scan selects exactly the same candidate as a full
        // re-evaluation; at worst a stale bound wakes the event-driven
        // driver a few cycles early (a harmless spurious event).
        let (candidate, hint) = {
            let ChannelController {
                config,
                channel,
                open_rows,
                read_queue,
                write_queue,
                ..
            } = self;
            let queue = if is_write_phase {
                &mut *write_queue
            } else {
                &mut *read_queue
            };
            let use_cache = config.ready_cache;
            let mut found: Option<usize> = None;
            let mut hint = Cycle::MAX;
            for i in 0..queue.len() {
                if starved && i != 0 && config.scheduling == SchedulingPolicy::FrFcfs {
                    break;
                }
                // Ready-cache skip before even touching the entry: a cached
                // bound is timing-only, so it disqualifies the entry whether
                // or not its row is (still) open, and the stale-but-valid
                // hint merely wakes the event driver early.
                if use_cache {
                    let cached = queue.ready_hint(i);
                    if cached > now {
                        hint = hint.min(cached);
                        if config.scheduling == SchedulingPolicy::Fcfs {
                            break;
                        }
                        continue;
                    }
                }
                let e = *queue.get(i).expect("index in bounds");
                let idx = flat_bank_index(&config.organization, e.dram.bank);
                if open_rows[idx] != Some(e.dram.row) {
                    if config.scheduling == SchedulingPolicy::Fcfs {
                        break;
                    }
                    continue;
                }
                let pc = e.dram.bank.pseudo_channel as usize;
                if pc < pcs.min(MAX_GATED_PCS) && pc_bound[pc] > now {
                    hint = hint.min(pc_bound[pc]);
                    if use_cache {
                        queue.set_ready_hint(i, pc_bound[pc]);
                    }
                    if config.scheduling == SchedulingPolicy::Fcfs {
                        break;
                    }
                    continue;
                }
                // Earliest-issue does not depend on the auto-precharge flag,
                // so the O(queue) pending-hit lookup that decides it is
                // deferred until an entry is actually chosen.
                let probe = column_command(&e, false);
                let at = channel.earliest_issue(&probe, now);
                if at <= now {
                    found = Some(i);
                    break;
                }
                hint = hint.min(at);
                if use_cache {
                    queue.set_ready_hint(i, at);
                }
                if config.scheduling == SchedulingPolicy::Fcfs {
                    break;
                }
            }
            (found, hint)
        };
        if hint != Cycle::MAX {
            self.hint_event(hint);
        }

        let Some(index) = candidate else { return false };
        let entry = if is_write_phase {
            self.write_queue
                .remove(index)
                .expect("candidate index valid")
        } else {
            self.read_queue
                .remove(index)
                .expect("candidate index valid")
        };
        let idx = self.bank_index(entry.dram.bank);
        let pending_hit = if is_write_phase {
            self.write_queue.has_pending_row_hit(entry.dram)
        } else {
            self.read_queue.has_pending_row_hit(entry.dram)
        };
        let auto_precharge = self.config.page_policy.auto_precharge(pending_hit);
        let cmd = column_command(&entry, auto_precharge);
        let result = self
            .channel
            .issue(cmd, now)
            .expect("probed via earliest_issue");
        if auto_precharge {
            self.open_rows[idx] = None;
        }
        self.stats.row_hits += 1;
        let seq = self.inflight_seq;
        self.inflight_seq += 1;
        self.in_flight.push(Reverse(InFlight {
            entry,
            data_complete_at: result.data_complete_at.unwrap_or(now),
            seq,
        }));
        true
    }

    /// Try to issue a row command (ACT or PRE) that makes progress for the
    /// active queue. Returns `true` if a command was issued.
    fn schedule_row(&mut self, now: Cycle) -> bool {
        enum RowAction {
            Act { index: usize, row: u32 },
            Pre { bank: BankAddress },
        }

        let (action, hint) = {
            let ChannelController {
                config,
                channel,
                open_rows,
                read_queue,
                write_queue,
                refresh_reserved_bank,
                write_drain,
                ..
            } = self;
            let queue = if *write_drain {
                &mut *write_queue
            } else {
                &mut *read_queue
            };
            let use_cache = config.ready_cache;
            let mut act: Option<(usize, u32, BankAddress)> = None;
            let mut pre: Option<BankAddress> = None;
            let mut hint = Cycle::MAX;
            for i in 0..queue.len() {
                let e = *queue.get(i).expect("index in bounds");
                let idx = flat_bank_index(&config.organization, e.dram.bank);
                if *refresh_reserved_bank == Some(e.dram.bank) {
                    continue;
                }
                match open_rows[idx] {
                    None if act.is_none() => {
                        // Ready cache: a previously computed ACT bound for
                        // this entry is a permanent lower bound (ACT timing
                        // constraints are monotone too), so skip with one
                        // comparison until its cycle arrives.
                        if use_cache {
                            let cached = queue.act_ready_hint(i);
                            if cached > now {
                                hint = hint.min(cached);
                                continue;
                            }
                        }
                        // Rank-scope gate: tRRD/tFAW bound every ACT on
                        // the rank, so a blocked rank disqualifies all
                        // of its pending activations with one
                        // comparison.
                        let rank_bound = channel.rank_act_bound(e.dram.bank);
                        if rank_bound > now {
                            hint = hint.min(rank_bound);
                            if use_cache {
                                queue.set_act_ready_hint(i, rank_bound);
                            }
                        } else {
                            let cmd = DramCommand::Act {
                                target: CommandTarget::from_bank_address(e.dram.bank),
                                row: e.dram.row,
                            };
                            let at = channel.earliest_issue(&cmd, now);
                            if at <= now && channel.can_issue(&cmd, now) {
                                act = Some((i, e.dram.row, e.dram.bank));
                            } else {
                                let at = at.max(now + 1);
                                hint = hint.min(at);
                                if use_cache {
                                    queue.set_act_ready_hint(i, at);
                                }
                            }
                        }
                    }
                    Some(open)
                        if open != e.dram.row
                        // Row conflict: precharge, but only if no queued
                        // request still wants the open row (fairness).
                        && pre.is_none() =>
                    {
                        let open_addr = rome_hbm::address::DramAddress {
                            channel: e.dram.channel,
                            bank: e.dram.bank,
                            row: open,
                            column: 0,
                        };
                        let still_wanted = queue.has_pending_row_hit(open_addr);
                        let cmd = DramCommand::Pre {
                            target: CommandTarget::from_bank_address(e.dram.bank),
                        };
                        if !still_wanted {
                            let at = channel.earliest_issue(&cmd, now);
                            if at <= now {
                                pre = Some(e.dram.bank);
                            } else {
                                hint = hint.min(at);
                            }
                        }
                    }
                    _ => {}
                }
                if act.is_some() {
                    break;
                }
            }
            let action = if let Some((index, row, _bank)) = act {
                Some(RowAction::Act { index, row })
            } else {
                pre.map(|bank| RowAction::Pre { bank })
            };
            (action, hint)
        };
        if hint != Cycle::MAX {
            self.hint_event(hint);
        }

        match action {
            Some(RowAction::Act { index, row }) => {
                let bank = {
                    let queue = self.active_queue();
                    queue.get(index).expect("index valid").dram.bank
                };
                let cmd = DramCommand::Act {
                    target: CommandTarget::from_bank_address(bank),
                    row,
                };
                self.channel.issue(cmd, now).expect("checked");
                let idx = self.bank_index(bank);
                self.open_rows[idx] = Some(row);
                self.stats.row_misses += 1;
                true
            }
            Some(RowAction::Pre { bank }) => {
                let cmd = DramCommand::Pre {
                    target: CommandTarget::from_bank_address(bank),
                };
                self.channel.issue(cmd, now).expect("checked");
                let idx = self.bank_index(bank);
                self.open_rows[idx] = None;
                self.stats.row_conflicts += 1;
                true
            }
            None => false,
        }
    }
}

/// Flat index of `bank` within one channel of `org` (PC-major, then stack
/// ID, then bank group).
fn flat_bank_index(org: &Organization, bank: BankAddress) -> usize {
    let per_pc = org.banks_per_pseudo_channel() as usize;
    let per_sid = (org.bank_groups * org.banks_per_group) as usize;
    bank.pseudo_channel as usize * per_pc
        + bank.stack_id as usize * per_sid
        + bank.bank_group as usize * org.banks_per_group as usize
        + bank.bank as usize
}

impl rome_engine::MemoryController for ChannelController {
    type Entry = QueueEntry;

    fn enqueue(&mut self, request: MemoryRequest) -> bool {
        ChannelController::enqueue(self, request)
    }

    fn enqueue_entry(&mut self, entry: QueueEntry) -> bool {
        self.enqueue_mapped(entry)
    }

    fn entry_kind(entry: &QueueEntry) -> RequestKind {
        entry.request.kind
    }

    fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        ChannelController::tick_into(self, now, completed)
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        ChannelController::next_event_at(self, now)
    }

    fn is_idle(&self) -> bool {
        ChannelController::is_idle(self)
    }

    fn slots_free(&self) -> usize {
        ChannelController::slots_free(self)
    }

    fn slots_free_for(&self, kind: RequestKind) -> usize {
        match kind {
            RequestKind::Read => self.read_slots_free(),
            RequestKind::Write => self.write_slots_free(),
        }
    }

    fn stats_snapshot(&self) -> rome_engine::StatsSnapshot {
        let s = self.stats();
        rome_engine::StatsSnapshot {
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            // A cache-line-granularity controller moves exactly the useful
            // payload: no overfetch.
            bytes_transferred: s.bytes_total(),
            mean_read_latency: s.mean_read_latency(),
            row_hit_rate: s.row_hit_rate(),
            activates: s.dram.activates,
        }
    }
}

fn column_command(entry: &QueueEntry, auto_precharge: bool) -> DramCommand {
    let target = CommandTarget::from_bank_address(entry.dram.bank);
    match entry.request.kind {
        RequestKind::Read => DramCommand::Rd {
            target,
            column: entry.dram.column,
            auto_precharge,
        },
        RequestKind::Write => DramCommand::Wr {
            target,
            column: entry.dram.column,
            auto_precharge,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> ChannelController {
        ChannelController::new(ControllerConfig::hbm4_baseline())
    }

    fn run_until_idle(
        ctrl: &mut ChannelController,
        max_ns: Cycle,
    ) -> (Vec<CompletedRequest>, Cycle) {
        let mut done = Vec::new();
        let mut now = 0;
        while !ctrl.is_idle() && now < max_ns {
            done.extend(ctrl.tick(now));
            now += 1;
        }
        (done, now)
    }

    #[test]
    fn single_read_completes_with_act_rd_latency() {
        let mut ctrl = controller();
        assert!(ctrl.enqueue(MemoryRequest::read(1, 0, 32, 0)));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        // Latency = ACT->RD (tRCD=16) + CAS latency (16) + burst (1), plus a
        // couple of scheduling cycles.
        let lat = done[0].latency();
        assert!(
            (33..=40).contains(&lat),
            "latency {lat} outside expected window"
        );
        assert_eq!(ctrl.stats().reads_completed, 1);
        assert_eq!(ctrl.stats().bytes_read, 32);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn single_write_completes() {
        let mut ctrl = controller();
        assert!(ctrl.enqueue(MemoryRequest::write(1, 64, 32, 0)));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, RequestKind::Write);
        assert_eq!(ctrl.stats().writes_completed, 1);
        assert_eq!(ctrl.stats().bytes_written, 32);
    }

    #[test]
    fn sequential_reads_exploit_row_hits() {
        let mut ctrl = controller();
        // 64 consecutive cache lines: with the single-channel streaming
        // mapping these spread over PCs/BGs/banks but revisit open rows.
        for i in 0..64u64 {
            assert!(ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0)));
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 64);
        let s = ctrl.stats();
        assert_eq!(s.reads_completed, 64);
        assert_eq!(s.bytes_read, 64 * 32);
        // Far fewer activations than column accesses.
        assert!(s.dram.activates < 40, "activates = {}", s.dram.activates);
        assert!(s.row_hit_rate() > 0.4, "row hit rate {}", s.row_hit_rate());
    }

    #[test]
    fn streaming_reads_achieve_high_bus_utilization() {
        let mut ctrl = controller();
        let total: u64 = 512;
        let mut next = 0u64;
        let mut now = 0;
        let mut completed = 0u64;
        while completed < total && now < 200_000 {
            while next < total && ctrl.read_slots_free() > 0 {
                ctrl.enqueue(MemoryRequest::read(next, next * 32, 32, now));
                next += 1;
            }
            completed += ctrl.tick(now).len() as u64;
            now += 1;
        }
        assert_eq!(completed, total);
        let bytes = total * 32;
        let bw = bytes as f64 / now as f64;
        // Channel peak is 64 GB/s; a deep-queue FR-FCFS stream should reach
        // well over half of it once warmed up.
        assert!(
            bw > 32.0,
            "achieved bandwidth {bw:.1} GB/s too low (t={now})"
        );
    }

    #[test]
    fn queue_capacity_limits_acceptance() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(2));
        assert!(ctrl.enqueue(MemoryRequest::read(0, 0, 32, 0)));
        assert!(ctrl.enqueue(MemoryRequest::read(1, 32, 32, 0)));
        assert!(!ctrl.enqueue(MemoryRequest::read(2, 64, 32, 0)));
        assert_eq!(ctrl.read_slots_free(), 0);
        assert_eq!(ctrl.write_slots_free(), 2);
    }

    #[test]
    fn refresh_commands_are_issued_over_long_windows() {
        let mut ctrl = controller();
        // Idle controller for > tREFI_pb: refreshes must appear.
        for now in 0..20_000 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().refreshes_issued > 0);
        assert!(ctrl.channel().counters().refreshes_per_bank > 0);
    }

    #[test]
    fn write_drain_switches_modes() {
        let mut ctrl = controller();
        for i in 0..60u64 {
            ctrl.enqueue(MemoryRequest::write(i, i * 32, 32, 0));
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 60);
        assert_eq!(ctrl.stats().writes_completed, 60);
    }

    #[test]
    fn mixed_read_write_traffic_completes() {
        let mut ctrl = controller();
        for i in 0..32u64 {
            if i % 4 == 0 {
                ctrl.enqueue(MemoryRequest::write(i, 4096 + i * 32, 32, 0));
            } else {
                ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0));
            }
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 32);
        assert_eq!(ctrl.stats().writes_completed, 8);
        assert_eq!(ctrl.stats().reads_completed, 24);
    }

    #[test]
    fn closed_page_policy_precharges_aggressively() {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.page_policy = PagePolicy::Closed;
        let mut ctrl = ChannelController::new(cfg);
        for i in 0..16u64 {
            ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0));
        }
        run_until_idle(&mut ctrl, 50_000);
        // Every column access auto-precharges, so activates ~= reads.
        let s = ctrl.stats();
        assert!(s.dram.activates as i64 >= s.dram.reads as i64 - 1);
    }

    #[test]
    fn fcfs_policy_still_completes_requests() {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.scheduling = SchedulingPolicy::Fcfs;
        let mut ctrl = ChannelController::new(cfg);
        for i in 0..8u64 {
            ctrl.enqueue(MemoryRequest::read(i, i * 4096, 32, 0));
        }
        let (done, _) = run_until_idle(&mut ctrl, 50_000);
        assert_eq!(done.len(), 8);
    }

    #[test]
    fn stats_idle_and_stall_cycles_accumulate() {
        let mut ctrl = controller();
        for now in 0..100 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().idle_cycles > 0);
        assert_eq!(ctrl.stats().total_cycles, 100);
    }
}
