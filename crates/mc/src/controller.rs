//! The conventional per-channel memory controller.
//!
//! This is the paper's baseline (§II-D): an FR-FCFS scheduler over CAM-style
//! read/write queues, per-bank state logic, an open-page (or configurable)
//! page policy, per-bank refresh, and age-based anti-starvation. Every DRAM
//! command it emits is validated by the cycle-accurate
//! [`rome_hbm::HbmChannel`] model, so illegal schedules cannot silently
//! inflate bandwidth.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use rome_engine::trace::{FlightRecorder, TraceBuffer, TraceConfig, TraceEvent, TraceEventKind};
use rome_engine::EventHorizon;
use rome_hbm::address::BankAddress;
use rome_hbm::channel::HbmChannel;
use rome_hbm::command::{CommandKind, CommandTarget, DramCommand};
use rome_hbm::organization::Organization;
use rome_hbm::refresh::{RefreshMode, RefreshScheduler};
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use crate::mapping::{AddressMapping, MappingScheme};
use crate::page_policy::PagePolicy;
use crate::queue::{BankIndexer, QueueEntry, RequestQueue};
use crate::request::{CompletedRequest, MemoryRequest, RequestKind};
use crate::stats::ControllerStats;

/// Request-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-ready, first-come-first-served: row hits first, then oldest.
    #[default]
    FrFcfs,
    /// Strict first-come-first-served (no row-hit prioritization).
    Fcfs,
}

/// Configuration of a conventional channel controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// DRAM organization of the attached channel.
    pub organization: Organization,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Address mapping used when raw physical addresses are enqueued.
    pub mapping: MappingScheme,
    /// Read queue capacity (entries). The paper's baseline uses 64.
    pub read_queue_capacity: usize,
    /// Write queue capacity (entries).
    pub write_queue_capacity: usize,
    /// Page policy.
    pub page_policy: PagePolicy,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Refresh mode (per-bank in the paper's evaluation).
    pub refresh_mode: RefreshMode,
    /// Age in ns after which the oldest request preempts row-hit-first
    /// scheduling (QoS / anti-starvation).
    pub starvation_threshold: Cycle,
    /// Write-queue occupancy at which the controller switches to draining
    /// writes.
    pub write_drain_high: usize,
    /// Write-queue occupancy at which the controller returns to serving
    /// reads.
    pub write_drain_low: usize,
    /// Whether the FR-FCFS candidate scan uses the per-entry ready cache:
    /// earliest-issue bounds computed for blocked entries are remembered and
    /// each entry is skipped with one comparison until its cached cycle
    /// arrives, instead of re-evaluating the constraint engine every tick.
    /// DRAM timing constraints are monotone (issuing commands only moves
    /// earliest-issue times later), so the cache cannot change a single
    /// scheduling decision — the equivalence suite pins bit-identical
    /// reports with the cache on and off. Disable only to measure its
    /// effect.
    pub ready_cache: bool,
    /// Whether the FR-FCFS scans run in data-oriented (struct-of-arrays)
    /// form: the column scan walks the queue's packed ready/bank/row arrays
    /// and tests row-open state against a per-channel bank bitmask, touching
    /// an entry's full payload only when it is about to be probed or issued.
    /// The SoA scans evaluate exactly the same predicates in exactly the
    /// same order as the original entry-at-a-time scans (which stay compiled
    /// in as the oracle), so the schedule is bit-identical — the equivalence
    /// suite pins this with the toggle on and off. Disable only to measure
    /// the effect or to cross-check against the oracle. The SoA scans
    /// subsume the ready cache (the packed bound arrays are integral to the
    /// layout), so `ready_cache` is only consulted by the oracle scan.
    pub soa: bool,
}

impl ControllerConfig {
    /// The HBM4 baseline configuration used throughout the paper's
    /// evaluation: 64-entry queues, FR-FCFS, open page, per-bank refresh.
    pub fn hbm4_baseline() -> Self {
        let organization = Organization::hbm4();
        ControllerConfig {
            organization,
            timing: TimingParams::hbm4(),
            mapping: MappingScheme::hbm4_streaming(organization, 1),
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            page_policy: PagePolicy::Open,
            scheduling: SchedulingPolicy::FrFcfs,
            refresh_mode: RefreshMode::PerBank,
            starvation_threshold: 2_000,
            write_drain_high: 48,
            write_drain_low: 16,
            ready_cache: true,
            soa: true,
        }
    }

    /// Same as [`ControllerConfig::hbm4_baseline`] but with an explicit
    /// read/write queue capacity (used by the queue-depth experiment, §V-A).
    pub fn hbm4_with_queue_depth(depth: usize) -> Self {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.read_queue_capacity = depth;
        cfg.write_queue_capacity = depth;
        cfg.write_drain_high = (depth * 3 / 4).max(1);
        cfg.write_drain_low = depth / 4;
        cfg
    }
}

/// Bookkeeping for a request whose data transfer is in flight.
///
/// Ordered by `(data_complete_at, seq)` so the in-flight set can live in a
/// min-heap (wrapped in [`Reverse`]): completions pop in completion order,
/// the next completion time is a peek, and ties break on issue order, which
/// keeps the emission sequence deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    entry: QueueEntry,
    data_complete_at: Cycle,
    /// Monotone issue sequence number (tie-breaker for equal completion
    /// times).
    seq: u64,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.data_complete_at, self.seq).cmp(&(other.data_complete_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A conventional single-channel memory controller bound to a cycle-accurate
/// HBM channel model.
#[derive(Debug, Clone)]
pub struct ChannelController {
    config: ControllerConfig,
    channel: HbmChannel,
    read_queue: RequestQueue,
    write_queue: RequestQueue,
    /// In-flight data transfers, ordered by completion time (min-heap):
    /// completions are popped, never scanned, and the next completion time
    /// is an O(1) peek for [`ChannelController::next_event_at`].
    in_flight: BinaryHeap<Reverse<InFlight>>,
    /// Issue sequence counter feeding [`InFlight::seq`].
    inflight_seq: u64,
    refresh: Vec<RefreshScheduler>,
    /// Cached minimum of the refresh schedulers' `next_due` cycles, updated
    /// only when a refresh is acknowledged (the sole mutation that moves a
    /// due time). While it lies in the future it answers the refresh part of
    /// [`ChannelController::next_event_at`] with one comparison; once it is
    /// in the past (a refresh is due but postponed) the query falls back to
    /// the per-rank scan, which is the pre-calendar behaviour.
    refresh_due_min: Cycle,
    /// The controller's own per-bank state logic: open row per bank, indexed
    /// by the flat bank index.
    open_rows: Vec<Option<u32>>,
    /// Row-open bitmask over the flat bank index (bit `b & 63` of word
    /// `b >> 6`). Invariant: bit `b` set iff `open_rows[b].is_some()` —
    /// both are only mutated through
    /// [`ChannelController::set_open_row`] /
    /// [`ChannelController::clear_open_row`], so the SoA column scan can
    /// test row-open state with one shift instead of loading an `Option`
    /// per entry.
    open_mask: Vec<u64>,
    /// Cached lower bound on the earliest cycle a PRE can issue, per flat
    /// bank index (0 = unknown). Same monotonicity argument as the queue's
    /// ready hints: PRE timing only moves later as commands are recorded,
    /// so a probed bound stays a valid lower bound forever and a
    /// tRAS-blocked bank is skipped with one comparison per scan instead of
    /// a CAM walk plus a constraint probe. Only the SoA scan consults it;
    /// a stale-but-valid bound at worst wakes the event driver early (a
    /// harmless spurious event).
    pre_ready: Vec<Cycle>,
    /// Cached lower bound on the earliest cycle an ACT can issue, per flat
    /// bank index (0 = unknown). Bank-scoped counterpart of the queues'
    /// per-entry ACT hints: when one entry's probe finds the bank blocked
    /// (tRC/tRP), every other queued entry on the same bank is blocked
    /// until the same cycle, so they skip without their own probes. Same
    /// monotonicity argument and SoA-only consultation as `pre_ready`.
    act_ready: Vec<Cycle>,
    /// Flat bank indexing shared with the queues' packed bank arrays.
    indexer: BankIndexer,
    write_drain: bool,
    /// A bank that has been precharged in preparation for an urgent refresh;
    /// the scheduler must not re-activate it until the refresh issues.
    refresh_reserved_bank: Option<BankAddress>,
    stats: ControllerStats,
    /// Sim-time flight recorder: disarmed (a compiled-in no-op) by default,
    /// armed by the drivers through
    /// [`rome_engine::MemoryController::set_trace`]. Recording is a derived
    /// observation — nothing the scheduler consults ever reads it — so an
    /// armed recorder cannot perturb the command schedule.
    trace: FlightRecorder,
    /// Cycle each bank's current row was activated, indexed by flat bank.
    /// Maintained only while the recorder runs at `commands` verbosity; it
    /// feeds the `row_open` span emitted when the row closes.
    act_at: Vec<Cycle>,
    /// Earliest future cycle at which a command the scheduler wanted to
    /// issue this tick becomes timing-legal. Recorded as a byproduct of the
    /// tick's failed scheduling attempts (the scan already computes every
    /// candidate's earliest-issue time), so [`ChannelController::next_event_at`]
    /// needs no second scan. Only complete after a tick that issued nothing.
    event_hint: Cycle,
}

impl ChannelController {
    /// Create a controller from its configuration.
    pub fn new(config: ControllerConfig) -> Self {
        let org = config.organization;
        let channel = HbmChannel::new(org, config.timing);
        let ranks = (org.pseudo_channels as usize) * (org.stack_ids as usize);
        let banks_per_rank = (org.bank_groups * org.banks_per_group) as u32;
        let refresh: Vec<RefreshScheduler> = (0..ranks)
            .map(|_| RefreshScheduler::new(config.refresh_mode, &config.timing, banks_per_rank))
            .collect();
        let refresh_due_min = refresh
            .iter()
            .map(RefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
        let indexer = BankIndexer::new(&org);
        let banks = org.banks_per_channel() as usize;
        ChannelController {
            read_queue: RequestQueue::new(config.read_queue_capacity, indexer),
            write_queue: RequestQueue::new(config.write_queue_capacity, indexer),
            in_flight: BinaryHeap::new(),
            inflight_seq: 0,
            refresh,
            refresh_due_min,
            open_rows: vec![None; banks],
            open_mask: vec![0; banks.div_ceil(64)],
            pre_ready: vec![0; banks],
            act_ready: vec![0; banks],
            indexer,
            write_drain: false,
            refresh_reserved_bank: None,
            stats: ControllerStats::new(),
            trace: FlightRecorder::disabled(),
            act_at: vec![0; banks],
            event_hint: Cycle::MAX,
            channel,
            config,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Enable or disable the data-oriented (struct-of-arrays) FR-FCFS scans
    /// (see [`ControllerConfig::soa`]). The SoA and oracle scans make
    /// identical decisions over identical state, so toggling mid-run is
    /// safe; it exists so equivalence tests and benchmarks can compare the
    /// two paths.
    pub fn set_soa(&mut self, enabled: bool) {
        self.config.soa = enabled;
    }

    /// Record `row` as open in `open_rows` and the row-open mask (the only
    /// writer besides [`ChannelController::clear_open_row`], which keeps the
    /// mask invariant structural). Both queues refresh their per-entry
    /// row-match flags and open-row-hit counts here — the single row-state
    /// mutation point — so the scans can test "row hit" and the
    /// adaptive-page-policy CAM in O(1).
    #[inline]
    fn set_open_row(&mut self, idx: usize, row: u32) {
        self.open_rows[idx] = Some(row);
        self.open_mask[idx >> 6] |= 1 << (idx & 63);
        self.read_queue.note_act(idx, row);
        self.write_queue.note_act(idx, row);
    }

    /// Clear the open row in `open_rows` and the row-open mask.
    #[inline]
    fn clear_open_row(&mut self, idx: usize) {
        self.open_rows[idx] = None;
        self.open_mask[idx >> 6] &= !(1 << (idx & 63));
        self.read_queue.note_pre(idx);
        self.write_queue.note_pre(idx);
    }

    /// Record the close of a bank's row-open window — ACT at `act_at[idx]`,
    /// closed at `now` — when the recorder runs at `commands` verbosity.
    /// Must be called *before* [`ChannelController::clear_open_row`], which
    /// forgets which row was open.
    #[inline]
    fn trace_row_close(&mut self, idx: usize, now: Cycle) {
        if self.trace.commands() {
            let opened = self.act_at[idx];
            self.trace.record(TraceEvent {
                bank: idx as u32,
                row: self.open_rows[idx].unwrap_or(0),
                dur: now.saturating_sub(opened),
                ..TraceEvent::at(TraceEventKind::RowOpen, opened)
            });
        }
    }

    /// The controller statistics accumulated so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying channel model (for command/energy counters).
    pub fn channel(&self) -> &HbmChannel {
        &self.channel
    }

    /// Whether the controller has no pending or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.read_queue.is_empty() && self.write_queue.is_empty() && self.in_flight.is_empty()
    }

    /// Number of free read-queue slots.
    pub fn read_slots_free(&self) -> usize {
        self.read_queue.capacity() - self.read_queue.len()
    }

    /// Number of free write-queue slots.
    pub fn write_slots_free(&self) -> usize {
        self.write_queue.capacity() - self.write_queue.len()
    }

    /// Total free queue slots across both queues. Admission is still
    /// per-kind ([`ChannelController::read_slots_free`] /
    /// [`ChannelController::write_slots_free`]); this combined count mirrors
    /// `RomeController::slots_free` so both controllers satisfy
    /// [`rome_engine::MemoryController`] uniformly.
    pub fn slots_free(&self) -> usize {
        self.read_slots_free() + self.write_slots_free()
    }

    /// Enqueue a request given as a raw physical address, using the
    /// controller's own address mapping. Returns `false` if the relevant
    /// queue is full.
    pub fn enqueue(&mut self, request: MemoryRequest) -> bool {
        let dram = self.config.mapping.map(request.address);
        self.enqueue_mapped(QueueEntry { request, dram })
    }

    /// Enqueue a request whose DRAM coordinates were already decoded (used by
    /// the multi-channel memory system). Returns `false` if the queue is
    /// full.
    pub fn enqueue_mapped(&mut self, entry: QueueEntry) -> bool {
        let ok = match entry.request.kind {
            RequestKind::Read => self.read_queue.push(entry),
            RequestKind::Write => self.write_queue.push(entry),
        };
        if ok && self.trace.enabled() {
            let req = entry.request;
            let idx = self.bank_index(entry.dram.bank);
            self.trace.record(TraceEvent {
                id: req.id.0,
                bank: idx as u32,
                row: entry.dram.row,
                bytes: req.bytes,
                write: !req.kind.is_read(),
                ..TraceEvent::at(TraceEventKind::Enqueue, req.arrival)
            });
        }
        ok
    }

    fn bank_index(&self, bank: BankAddress) -> usize {
        flat_bank_index(&self.config.organization, bank)
    }

    fn rank_index(&self, bank: BankAddress) -> usize {
        bank.pseudo_channel as usize * self.config.organization.stack_ids as usize
            + bank.stack_id as usize
    }

    /// Advance the controller by one nanosecond, returning any requests whose
    /// data transfer completed at or before `now`.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`ChannelController::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<CompletedRequest> {
        let mut completed = Vec::new();
        self.tick_into(now, &mut completed);
        completed
    }

    /// Advance the controller by one nanosecond, appending any requests whose
    /// data transfer completed at or before `now` to `completed`. Returns
    /// `true` if any DRAM command (row, column, or refresh) was issued.
    ///
    /// The controller may issue at most one row command (ACT/PRE/REF) and one
    /// column command (RD/WR) per pseudo channel per call, matching the
    /// separate row/column C/A buses of HBM.
    pub fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        self.stats.total_cycles += 1;
        self.read_queue.sample_occupancy();
        self.write_queue.sample_occupancy();
        self.event_hint = Cycle::MAX;

        self.collect_completions_into(now, completed);

        let had_work = !self.read_queue.is_empty() || !self.write_queue.is_empty();

        // Refresh has priority on the row bus; otherwise the scheduler may
        // use it for ACT/PRE below. The row and column C/A buses are
        // separate, so one row command and one column command may issue in
        // the same nanosecond.
        let issued_refresh = self.try_issue_refresh(now);

        self.update_write_drain();

        // The C/A bus runs fast enough to address both pseudo channels every
        // nanosecond, so up to one column and one row command per PC may be
        // issued per tick; per-PC tCCD/tRRD constraints prevent over-issue to
        // a single PC.
        let mut issued_col = false;
        for _ in 0..self.config.organization.pseudo_channels {
            if self.schedule_column(now) {
                issued_col = true;
            } else {
                break;
            }
        }
        let mut issued_row = false;
        if !issued_refresh {
            for _ in 0..self.config.organization.pseudo_channels {
                if self.schedule_row(now) {
                    issued_row = true;
                } else {
                    break;
                }
            }
        }

        if had_work && !issued_col && !issued_row && !issued_refresh {
            self.stats.stall_cycles += 1;
        } else if !had_work && self.in_flight.is_empty() {
            self.stats.idle_cycles += 1;
        }

        self.stats.mean_queue_occupancy = self.read_queue.mean_occupancy();
        self.stats.peak_queue_occupancy = self
            .stats
            .peak_queue_occupancy
            .max(self.read_queue.peak_occupancy());
        self.stats.dram = *self.channel.counters();
        issued_col || issued_row || issued_refresh
    }

    /// The next cycle strictly after `now` at which this controller's state
    /// can change on its own: a data transfer completing, a refresh becoming
    /// due (or, if pending, becoming urgent or issuable), a queued request's
    /// next command becoming timing-legal, or the oldest request crossing
    /// the starvation threshold. `None` when the controller is fully idle
    /// and no refresh is pending.
    ///
    /// Must be called immediately after a [`ChannelController::tick_into`]
    /// at the same `now` that issued nothing: the scheduling-derived part of
    /// the answer (`event_hint`) is accumulated during that tick's failed
    /// issue attempts, which makes this query cheap. The returned cycle is a
    /// *lower bound* on the next state change — an event-driven driver that
    /// ticks at every reported cycle executes the exact command schedule of
    /// a cycle-by-cycle driver, because nothing the scheduler consults
    /// changes between the reported cycles. Spurious events (a reported
    /// cycle where the scheduler still issues nothing) are harmless.
    ///
    /// The query is O(1) on the hot path: the scheduler's part is the
    /// accumulated `event_hint`, the in-flight part is a heap peek, the
    /// refresh part is the cached minimum refresh due time (with an
    /// O(ranks) fallback only while a due refresh is postponed), and the
    /// starvation part looks at each queue's head.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = EventHorizon::new(now);

        if self.event_hint != Cycle::MAX {
            horizon.consider(self.event_hint);
        }

        // Only the earliest in-flight completion can be the next event.
        if let Some(Reverse(inflight)) = self.in_flight.peek() {
            horizon.consider(inflight.data_complete_at);
        }

        // Refreshes not yet due wake the scheduler when they become due;
        // pending ones already recorded their issuability into the hint.
        if self.refresh_due_min > now {
            // No scheduler is due, so the cached minimum IS the earliest
            // refresh wakeup.
            horizon.consider(self.refresh_due_min);
        } else {
            for sched in &self.refresh {
                if !sched.due(now) {
                    horizon.consider(sched.next_due());
                }
            }
        }

        for queue in [&self.read_queue, &self.write_queue] {
            if let Some(oldest) = queue.oldest() {
                // Crossing the starvation threshold changes the scheduling
                // policy even when no timing constraint expires.
                horizon.consider(oldest.request.arrival + self.config.starvation_threshold + 1);
            }
        }

        horizon.earliest()
    }

    /// Refresh the cached minimum refresh due time after an acknowledge
    /// moved one scheduler's `next_due` forward.
    fn note_refresh_acknowledged(&mut self) {
        self.refresh_due_min = self
            .refresh
            .iter()
            .map(RefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Record a future cycle at which a command the scheduler wanted this
    /// tick becomes issuable.
    fn hint_event(&mut self, at: Cycle) {
        if at < self.event_hint {
            self.event_hint = at;
        }
    }

    fn collect_completions_into(&mut self, now: Cycle, done: &mut Vec<CompletedRequest>) {
        // The heap is ordered by completion time, so only due transfers are
        // ever touched — no scan over the rest of the in-flight set.
        while self
            .in_flight
            .peek()
            .is_some_and(|Reverse(f)| f.data_complete_at <= now)
        {
            let Reverse(inflight) = self.in_flight.pop().expect("peeked entry present");
            let req = inflight.entry.request;
            let completed = CompletedRequest {
                id: req.id,
                kind: req.kind,
                bytes: req.bytes,
                arrival: req.arrival,
                completed: inflight.data_complete_at,
            };
            match req.kind {
                RequestKind::Read => {
                    self.stats.reads_completed += 1;
                    self.stats.bytes_read += req.bytes;
                    self.stats.total_read_latency += completed.latency();
                    self.stats.max_read_latency =
                        self.stats.max_read_latency.max(completed.latency());
                }
                RequestKind::Write => {
                    self.stats.writes_completed += 1;
                    self.stats.bytes_written += req.bytes;
                }
            }
            if self.trace.enabled() {
                let idx = self.bank_index(inflight.entry.dram.bank);
                self.trace.record(TraceEvent {
                    id: req.id.0,
                    bank: idx as u32,
                    row: inflight.entry.dram.row,
                    bytes: req.bytes,
                    dur: completed.latency(),
                    write: !req.kind.is_read(),
                    ..TraceEvent::at(TraceEventKind::Complete, req.arrival)
                });
            }
            done.push(completed);
        }
    }

    fn update_write_drain(&mut self) {
        if self.write_queue.len() >= self.config.write_drain_high
            || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        {
            self.write_drain = true;
        }
        if self.write_drain
            && (self.write_queue.len() <= self.config.write_drain_low
                || self.write_queue.is_empty())
            && !self.read_queue.is_empty()
        {
            self.write_drain = false;
        }
    }

    fn try_issue_refresh(&mut self, now: Cycle) -> bool {
        // O(1) fast path: `refresh_due_min` caches the earliest `next_due`
        // across ranks, so one comparison answers "is any rank due?". When
        // none is, the rank scan below is a pure no-op.
        if self.refresh_due_min > now {
            return false;
        }
        let org = self.config.organization;
        for pc in 0..org.pseudo_channels {
            for sid in 0..org.stack_ids {
                let rank = self.rank_index(BankAddress::new(pc, sid, 0, 0));
                if !self.refresh[rank].due(now) {
                    continue;
                }
                let urgent = self.refresh[rank].urgent(now);
                match self.config.refresh_mode {
                    RefreshMode::PerBank => {
                        // Identify the bank next in rotation without consuming it.
                        let banks_per_rank = (org.bank_groups * org.banks_per_group) as u32;
                        let probe = self.refresh[rank].issued() % banks_per_rank as u64;
                        let bg = (probe as u32 / org.banks_per_group as u32) as u8;
                        let ba = (probe as u32 % org.banks_per_group as u32) as u8;
                        let bank = BankAddress::new(pc, sid, bg, ba);
                        let target = CommandTarget::from_bank_address(bank);
                        let idx = self.bank_index(bank);
                        // Postpone a non-urgent refresh while requests are
                        // pending for this bank (the paper's "optionally
                        // postponing REFs based on each bank's state").
                        if !urgent {
                            let probe_addr = rome_hbm::address::DramAddress {
                                channel: 0,
                                bank,
                                row: 0,
                                column: 0,
                            };
                            if self.read_queue.has_pending_for_bank(probe_addr)
                                || self.write_queue.has_pending_for_bank(probe_addr)
                            {
                                // Postponed until the bank drains or the
                                // refresh becomes urgent.
                                self.hint_event(self.refresh[rank].urgent_at());
                                continue;
                            }
                        }
                        // If the bank has an open row, it must be precharged
                        // first; only force this when the refresh is urgent,
                        // otherwise wait for the scheduler to drain it.
                        if self.open_rows[idx].is_some() {
                            if urgent {
                                let pre = DramCommand::Pre { target };
                                if self.channel.can_issue(&pre, now) {
                                    self.channel.issue(pre, now).expect("checked");
                                    self.trace_row_close(idx, now);
                                    self.clear_open_row(idx);
                                    // Keep the bank closed until the refresh
                                    // actually issues.
                                    self.refresh_reserved_bank = Some(bank);
                                    return true;
                                }
                                self.hint_event(self.channel.earliest_issue(&pre, now + 1));
                            } else {
                                self.hint_event(self.refresh[rank].urgent_at());
                            }
                            continue;
                        }
                        let refpb = DramCommand::RefPerBank { target };
                        if self.channel.can_issue(&refpb, now) {
                            self.channel.issue(refpb, now).expect("checked");
                            self.refresh[rank].acknowledge(now);
                            self.note_refresh_acknowledged();
                            self.stats.refreshes_issued += 1;
                            if self.trace.commands() {
                                self.trace.record(TraceEvent {
                                    bank: idx as u32,
                                    dur: self.config.timing.t_rfc_pb as u64,
                                    ..TraceEvent::at(TraceEventKind::Refresh, now)
                                });
                            }
                            if self.refresh_reserved_bank == Some(bank) {
                                self.refresh_reserved_bank = None;
                            }
                            return true;
                        }
                        self.hint_event(self.channel.earliest_issue(&refpb, now + 1));
                        if urgent && self.refresh_reserved_bank.is_none() {
                            // Reserve the idle bank so the scheduler cannot
                            // open a row in it before the refresh becomes
                            // timing-legal.
                            self.refresh_reserved_bank = Some(bank);
                        }
                    }
                    RefreshMode::AllBank => {
                        let target = CommandTarget::bank(pc, sid, 0, 0);
                        // All banks of the rank must be precharged.
                        let any_open =
                            (0..(org.bank_groups * org.banks_per_group) as usize).any(|i| {
                                let base = self.bank_index(BankAddress::new(pc, sid, 0, 0));
                                self.open_rows[base + i].is_some()
                            });
                        if any_open {
                            if urgent {
                                let pre_all = DramCommand::PreAll { target };
                                if self.channel.can_issue(&pre_all, now) {
                                    self.channel.issue(pre_all, now).expect("checked");
                                    let base = self.bank_index(BankAddress::new(pc, sid, 0, 0));
                                    for i in 0..(org.bank_groups * org.banks_per_group) as usize {
                                        if self.open_rows[base + i].is_some() {
                                            self.trace_row_close(base + i, now);
                                        }
                                        self.clear_open_row(base + i);
                                    }
                                    return true;
                                }
                                self.hint_event(self.channel.earliest_issue(&pre_all, now + 1));
                            } else {
                                self.hint_event(self.refresh[rank].urgent_at());
                            }
                            continue;
                        }
                        let refab = DramCommand::RefAllBank { target };
                        if self.channel.can_issue(&refab, now) {
                            self.channel.issue(refab, now).expect("checked");
                            self.refresh[rank].acknowledge(now);
                            self.note_refresh_acknowledged();
                            self.stats.refreshes_issued += 1;
                            if self.trace.commands() {
                                let base = self.bank_index(BankAddress::new(pc, sid, 0, 0));
                                self.trace.record(TraceEvent {
                                    bank: base as u32,
                                    dur: self.config.timing.t_rfc_ab as u64,
                                    ..TraceEvent::at(TraceEventKind::Refresh, now)
                                });
                            }
                            return true;
                        }
                        self.hint_event(self.channel.earliest_issue(&refab, now + 1));
                    }
                }
            }
        }
        false
    }

    fn active_queue(&self) -> &RequestQueue {
        if self.write_drain {
            &self.write_queue
        } else {
            &self.read_queue
        }
    }

    /// Try to issue a column command (RD/WR) for the active queue. Returns
    /// `true` if a command was issued.
    fn schedule_column(&mut self, now: Cycle) -> bool {
        let is_write_phase = self.write_drain;
        let starved = self.active_queue().oldest_age(now) > self.config.starvation_threshold;

        // Per-pseudo-channel gate: the PC scope bounds the earliest issue of
        // every column command on that PC, so a blocked PC disqualifies all
        // of its entries with one comparison instead of a full
        // earliest-issue evaluation each.
        let kind = if is_write_phase {
            CommandKind::Wr
        } else {
            CommandKind::Rd
        };
        const MAX_GATED_PCS: usize = 8;
        let pcs = self.config.organization.pseudo_channels as usize;
        let mut pc_bound = [0 as Cycle; MAX_GATED_PCS];
        if pcs <= MAX_GATED_PCS {
            for (pc, bound) in pc_bound.iter_mut().enumerate().take(pcs) {
                *bound = self.channel.pseudo_channel_bound(kind, pc as u8);
            }
        }

        // Gather the candidate index: oldest entry whose row is open and
        // whose column command is issuable now. Entries blocked only by
        // timing feed the event hint with (a lower bound on) their
        // earliest-issue cycle.
        //
        // Ready cache: a bound computed for a blocked entry is stored in the
        // queue and the entry is skipped with one comparison on subsequent
        // scans until the bound's cycle arrives. Timing constraints are
        // monotone — issuing commands only pushes earliest-issue times later
        // — so a stored bound stays a valid lower bound for the entry's
        // lifetime and the scan selects exactly the same candidate as a full
        // re-evaluation; at worst a stale bound wakes the event-driven
        // driver a few cycles early (a harmless spurious event).
        let (candidate, hint) = {
            let ChannelController {
                config,
                channel,
                open_rows,
                open_mask,
                indexer,
                read_queue,
                write_queue,
                ..
            } = self;
            let queue = if is_write_phase {
                &mut *write_queue
            } else {
                &mut *read_queue
            };
            if config.soa {
                // Data-oriented scan: identical predicates in identical
                // order to the oracle scan below, but evaluated over plain
                // slices of the queue's packed arrays (one `scan_view`
                // split-borrow, so the base pointers and bounds stay in
                // registers) and the row-open bitmask — the 64-byte entry
                // payload is only loaded for the entry that reaches the
                // earliest-issue probe. The packed bound array is consulted
                // unconditionally (it subsumes `ready_cache`); the cache is
                // inert by the monotonicity argument on `ready_cache`, so
                // this cannot change a decision.
                let fcfs = config.scheduling == SchedulingPolicy::Fcfs;
                let frfcfs = config.scheduling == SchedulingPolicy::FrFcfs;
                let crate::queue::ScanView {
                    ready_at,
                    bank,
                    row,
                    row_match,
                    entries,
                    ..
                } = queue.scan_view();
                let n = bank.len();
                let ready_at = &mut ready_at[..n];
                let row = &row[..n];
                let row_match = &row_match[..n];
                let mut found: Option<usize> = None;
                let mut hint = Cycle::MAX;
                if frfcfs && !starved {
                    // Two-phase blocked scan. Phase 1 is a branchless sweep
                    // over one `PREPASS_BLOCK` of entries: it min-reduces
                    // the cached bounds of hint-blocked entries (their only
                    // effect on the oracle) and collects the entries that
                    // need real work — expired hint AND open row match —
                    // into a per-block bitmask (a branchless shift-or, so
                    // the randomly open/closed banks cost no branch
                    // mispredicts). Phase 2 runs the
                    // pseudo-channel gate and earliest-issue probes over the
                    // (few) candidates in age order — identical decisions to
                    // the one-pass loop. Sweeping block-by-block keeps the
                    // one-pass loop's early exit: an issuing tick stops
                    // within one block of the entry it picks. The hint may
                    // pick up contributions the oracle skips after its
                    // candidate-found break; those are valid lower bounds,
                    // and on an issuing tick the hint is never consulted.
                    let mut base = 0usize;
                    'col: while base < n {
                        let end = (base + PREPASS_BLOCK).min(n);
                        let mut cand_mask: u32 = 0;
                        for i in base..end {
                            let cached = ready_at[i];
                            let valid = cached > now;
                            hint = hint.min(if valid { cached } else { Cycle::MAX });
                            cand_mask |= ((!valid & (row_match[i] == 1)) as u32) << (i - base);
                        }
                        let block = base;
                        base = end;
                        while cand_mask != 0 {
                            let i = block + cand_mask.trailing_zeros() as usize;
                            cand_mask &= cand_mask - 1;
                            let b = bank[i] as usize;
                            let pc = indexer.pseudo_channel_of(b);
                            if pc < pcs.min(MAX_GATED_PCS) && pc_bound[pc] > now {
                                hint = hint.min(pc_bound[pc]);
                                ready_at[i] = pc_bound[pc];
                                continue;
                            }
                            let e = entries.entry(i);
                            let probe = column_command(e, false);
                            let at = channel.earliest_issue(&probe, now);
                            if at <= now {
                                found = Some(i);
                                break 'col;
                            }
                            hint = hint.min(at);
                            ready_at[i] = at;
                        }
                    }
                } else {
                    // One-pass form: needed verbatim for FCFS ordering and
                    // starvation mode (both break the scan early on
                    // position, which the two-phase sweep cannot honor).
                    for i in 0..n {
                        if starved && i != 0 && frfcfs {
                            break;
                        }
                        let cached = ready_at[i];
                        if cached > now {
                            hint = hint.min(cached);
                            if fcfs {
                                break;
                            }
                            continue;
                        }
                        let b = bank[i] as usize;
                        if open_mask[b >> 6] >> (b & 63) & 1 == 0 || open_rows[b] != Some(row[i]) {
                            if fcfs {
                                break;
                            }
                            continue;
                        }
                        let pc = indexer.pseudo_channel_of(b);
                        if pc < pcs.min(MAX_GATED_PCS) && pc_bound[pc] > now {
                            hint = hint.min(pc_bound[pc]);
                            ready_at[i] = pc_bound[pc];
                            if fcfs {
                                break;
                            }
                            continue;
                        }
                        let e = entries.entry(i);
                        let probe = column_command(e, false);
                        let at = channel.earliest_issue(&probe, now);
                        if at <= now {
                            found = Some(i);
                            break;
                        }
                        hint = hint.min(at);
                        ready_at[i] = at;
                        if fcfs {
                            break;
                        }
                    }
                }
                (found, hint)
            } else {
                let use_cache = config.ready_cache;
                let mut found: Option<usize> = None;
                let mut hint = Cycle::MAX;
                for i in 0..queue.len() {
                    if starved && i != 0 && config.scheduling == SchedulingPolicy::FrFcfs {
                        break;
                    }
                    // Ready-cache skip before even touching the entry: a cached
                    // bound is timing-only, so it disqualifies the entry whether
                    // or not its row is (still) open, and the stale-but-valid
                    // hint merely wakes the event driver early.
                    if use_cache {
                        let cached = queue.ready_hint_oracle(i);
                        if cached > now {
                            hint = hint.min(cached);
                            if config.scheduling == SchedulingPolicy::Fcfs {
                                break;
                            }
                            continue;
                        }
                    }
                    let e = *queue.get(i).expect("index in bounds");
                    let idx = flat_bank_index(&config.organization, e.dram.bank);
                    if open_rows[idx] != Some(e.dram.row) {
                        if config.scheduling == SchedulingPolicy::Fcfs {
                            break;
                        }
                        continue;
                    }
                    let pc = e.dram.bank.pseudo_channel as usize;
                    if pc < pcs.min(MAX_GATED_PCS) && pc_bound[pc] > now {
                        hint = hint.min(pc_bound[pc]);
                        if use_cache {
                            queue.set_ready_hint_oracle(i, pc_bound[pc]);
                        }
                        if config.scheduling == SchedulingPolicy::Fcfs {
                            break;
                        }
                        continue;
                    }
                    // Earliest-issue does not depend on the auto-precharge flag,
                    // so the O(queue) pending-hit lookup that decides it is
                    // deferred until an entry is actually chosen.
                    let probe = column_command(&e, false);
                    let at = channel.earliest_issue(&probe, now);
                    if at <= now {
                        found = Some(i);
                        break;
                    }
                    hint = hint.min(at);
                    if use_cache {
                        queue.set_ready_hint_oracle(i, at);
                    }
                    if config.scheduling == SchedulingPolicy::Fcfs {
                        break;
                    }
                }
                (found, hint)
            }
        };
        if hint != Cycle::MAX {
            self.hint_event(hint);
        }

        let Some(index) = candidate else { return false };
        let entry = if is_write_phase {
            self.write_queue
                .remove(index)
                .expect("candidate index valid")
        } else {
            self.read_queue
                .remove(index)
                .expect("candidate index valid")
        };
        let idx = self.bank_index(entry.dram.bank);
        let pending_hit = if is_write_phase {
            self.write_queue.has_pending_row_hit(entry.dram)
        } else {
            self.read_queue.has_pending_row_hit(entry.dram)
        };
        let auto_precharge = self.config.page_policy.auto_precharge(pending_hit);
        let cmd = column_command(&entry, auto_precharge);
        let result = self
            .channel
            .issue(cmd, now)
            .expect("probed via earliest_issue");
        if self.trace.commands() {
            self.trace.record(TraceEvent {
                id: entry.request.id.0,
                bank: idx as u32,
                row: entry.dram.row,
                bytes: entry.request.bytes,
                write: is_write_phase,
                ..TraceEvent::at(TraceEventKind::Issue, now)
            });
        }
        if auto_precharge {
            self.trace_row_close(idx, now);
            self.clear_open_row(idx);
        }
        self.stats.row_hits += 1;
        let seq = self.inflight_seq;
        self.inflight_seq += 1;
        self.in_flight.push(Reverse(InFlight {
            entry,
            data_complete_at: result.data_complete_at.unwrap_or(now),
            seq,
        }));
        true
    }

    /// Try to issue a row command (ACT or PRE) that makes progress for the
    /// active queue. Returns `true` if a command was issued.
    fn schedule_row(&mut self, now: Cycle) -> bool {
        enum RowAction {
            Act { index: usize, row: u32 },
            Pre { bank: BankAddress },
        }

        let (action, hint) = {
            let ChannelController {
                config,
                channel,
                open_rows,
                open_mask,
                pre_ready,
                act_ready,
                indexer,
                read_queue,
                write_queue,
                refresh_reserved_bank,
                write_drain,
                ..
            } = self;
            let queue = if *write_drain {
                &mut *write_queue
            } else {
                &mut *read_queue
            };
            if config.soa {
                // Data-oriented scan: same predicates and order as the
                // oracle scan below, over the packed bank array and the
                // row-open bitmask. The refresh-reserved comparison moves
                // to flat indices (the flat index is injective, so flat
                // equality is bank-address equality), and the entry payload
                // is only loaded once an entry survives the reserved /
                // mask / cached-bound gates.
                let reserved: Option<usize> = refresh_reserved_bank.map(|b| indexer.flat(b));
                // Lazy per-rank ACT-bound cache: `rank_act_bound` depends
                // only on the rank (tRRD window max tFAW window — no `now`,
                // no per-bank state), so within one scan every entry on the
                // same rank sees the same bound. Probing the constraint
                // engine once per distinct rank instead of once per entry is
                // the scan's biggest saving on dense queues.
                const MAX_GATED_RANKS: usize = 16;
                let mut rank_bounds = [Cycle::MAX; MAX_GATED_RANKS];
                let mut rank_known: u32 = 0;
                let mut rank_blocked: u32 = 0;
                let gate_ranks = indexer.ranks() <= MAX_GATED_RANKS;
                let all_ranks_mask: u32 = if gate_ranks {
                    (1u32 << indexer.ranks()) - 1
                } else {
                    u32::MAX
                };
                let crate::queue::ScanView {
                    act_ready_at,
                    bank,
                    row_match,
                    keep_open,
                    entries,
                    ..
                } = queue.scan_view();
                let n = bank.len();
                let act_ready_at = &mut act_ready_at[..n];
                let row_match = &row_match[..n];
                let keep_open = &keep_open[..n];
                let mut act: Option<(usize, u32, BankAddress)> = None;
                let mut pre: Option<BankAddress> = None;
                let mut hint = Cycle::MAX;
                // Two-phase blocked scan. The pre-pass needs only three
                // position-indexed loads per entry (no per-bank gathers,
                // no data-dependent branches): an entry is *relevant*
                // unless it is a row hit (`row_match` — a column
                // candidate, not a row one) or pinned behind the adaptive
                // page policy (`keep_open` — its bank's open row is still
                // wanted, where the oracle's CAM walk contributes neither
                // action nor hint). A relevant entry whose park bound
                // (`act_ready_at`) lies in the future contributes that
                // bound to the wakeup hint and is retired; survivors land
                // in a per-block bitmask for the full scheduling body
                // below. `act_ready_at` doubles as a unified park bound:
                // a cached ACT bound while the bank is closed, a cached
                // PRE bound while it is open. A bound cached under one
                // polarity stays valid across a flip — any PRE to the
                // bank must trail the ACT that opened it (tRAS) and any
                // ACT must trail the PRE that closed it (tRP), so the old
                // bound still lower-bounds the entry's next possible row
                // action. Sweeping block-by-block keeps the one-pass
                // loop's early exit: an ACT-issuing tick stops within one
                // block of the entry it picks. Reserved-bank entries may
                // add a spurious-but-valid extra hint, which at worst
                // wakes the event driver early.
                let mut base = 0usize;
                'row: while base < n {
                    // Once a PRE candidate is chosen and every rank is
                    // known ACT-blocked, no later entry can produce the
                    // higher-priority ACT: the scan's outcome is decided
                    // (the tick will issue the PRE, so the accumulated
                    // wakeup hint is never consulted) and the tail of the
                    // walk is skipped.
                    if pre.is_some() && rank_blocked == all_ranks_mask {
                        break;
                    }
                    let end = (base + PREPASS_BLOCK).min(n);
                    let mut cand_mask: u32 = 0;
                    for i in base..end {
                        let parked_at = act_ready_at[i];
                        let parked = parked_at > now;
                        let relevant = (row_match[i] == 0) & (keep_open[i] == 0);
                        hint = hint.min(if relevant & parked {
                            parked_at
                        } else {
                            Cycle::MAX
                        });
                        cand_mask |= ((relevant & !parked) as u32) << (i - base);
                    }
                    let block = base;
                    base = end;
                    while cand_mask != 0 {
                        let i = block + cand_mask.trailing_zeros() as usize;
                        cand_mask &= cand_mask - 1;
                        let b = bank[i] as usize;
                        if reserved == Some(b) {
                            continue;
                        }
                        if open_mask[b >> 6] >> (b & 63) & 1 == 0 {
                            if act.is_none() {
                                let cached = act_ready_at[i];
                                if cached > now {
                                    hint = hint.min(cached);
                                    continue;
                                }
                                // Bank-level ACT bound cached by an earlier
                                // probe (possibly for a different entry on
                                // the same bank): valid for this entry too,
                                // so memoize it per entry and skip both the
                                // rank gate and the probe. Checking the bank
                                // bound first is decision-equivalent (the
                                // entry reaches the probe iff neither bound
                                // lies in the future) and keeps the rank
                                // computation — an integer divide by the
                                // runtime bank-per-rank count — off the
                                // common bank-parked path.
                                let bank_bound = act_ready[b];
                                if bank_bound > now {
                                    hint = hint.min(bank_bound);
                                    act_ready_at[i] = bank_bound;
                                    continue;
                                }
                                let rank_bound = if gate_ranks {
                                    let r = indexer.rank_of(b);
                                    if rank_known & (1 << r) == 0 {
                                        let bound = channel.rank_act_bound(indexer.rank_address(b));
                                        rank_bounds[r] = bound;
                                        rank_known |= 1 << r;
                                        if bound > now {
                                            rank_blocked |= 1 << r;
                                        }
                                    }
                                    rank_bounds[r]
                                } else {
                                    channel.rank_act_bound(indexer.rank_address(b))
                                };
                                if rank_bound > now {
                                    hint = hint.min(rank_bound);
                                    act_ready_at[i] = rank_bound;
                                } else {
                                    let dram = entries.entry(i).dram;
                                    let cmd = DramCommand::Act {
                                        target: CommandTarget::from_bank_address(dram.bank),
                                        row: dram.row,
                                    };
                                    let at = channel.earliest_issue(&cmd, now);
                                    if at <= now && channel.can_issue(&cmd, now) {
                                        act = Some((i, dram.row, dram.bank));
                                    } else {
                                        let at = at.max(now + 1);
                                        hint = hint.min(at);
                                        act_ready_at[i] = at;
                                        act_ready[b] = at;
                                    }
                                }
                            }
                        } else {
                            // Pre-pass candidates on the open arm already
                            // satisfy the adaptive page policy: the entry's
                            // row mismatches the open one and no queued
                            // entry still wants it (`hits_open == 0`), so
                            // only the timing probe remains. Cross-scan
                            // bank-level `pre_ready` bound: while it lies
                            // in the future the bank cannot precharge, so
                            // one comparison covers the whole blocked
                            // window (and catches a same-scan duplicate
                            // candidate on the same bank).
                            if pre.is_none() {
                                let cached = pre_ready[b];
                                if cached > now {
                                    hint = hint.min(cached);
                                    // Park this entry on the bank bound so
                                    // the pre-pass retires it until the
                                    // bound expires.
                                    act_ready_at[i] = cached;
                                } else {
                                    let dram = entries.entry(i).dram;
                                    debug_assert!({
                                        let open =
                                            open_rows[b].expect("mask bit set implies open row");
                                        open != dram.row
                                            && !entries.has_pending_row_hit(
                                                rome_hbm::address::DramAddress {
                                                    channel: dram.channel,
                                                    bank: dram.bank,
                                                    row: open,
                                                    column: 0,
                                                },
                                            )
                                    });
                                    let cmd = DramCommand::Pre {
                                        target: CommandTarget::from_bank_address(dram.bank),
                                    };
                                    let at = channel.earliest_issue(&cmd, now);
                                    if at <= now {
                                        pre = Some(dram.bank);
                                    } else {
                                        hint = hint.min(at);
                                        pre_ready[b] = at;
                                        act_ready_at[i] = at;
                                    }
                                }
                            }
                        }
                        if act.is_some() {
                            break 'row;
                        }
                    }
                }
                let action = if let Some((index, row, _bank)) = act {
                    Some(RowAction::Act { index, row })
                } else {
                    pre.map(|bank| RowAction::Pre { bank })
                };
                (action, hint)
            } else {
                let use_cache = config.ready_cache;
                let mut act: Option<(usize, u32, BankAddress)> = None;
                let mut pre: Option<BankAddress> = None;
                let mut hint = Cycle::MAX;
                for i in 0..queue.len() {
                    let e = *queue.get(i).expect("index in bounds");
                    let idx = flat_bank_index(&config.organization, e.dram.bank);
                    if *refresh_reserved_bank == Some(e.dram.bank) {
                        continue;
                    }
                    match open_rows[idx] {
                        None if act.is_none() => {
                            // Ready cache: a previously computed ACT bound for
                            // this entry is a permanent lower bound (ACT timing
                            // constraints are monotone too), so skip with one
                            // comparison until its cycle arrives.
                            if use_cache {
                                let cached = queue.act_ready_hint_oracle(i);
                                if cached > now {
                                    hint = hint.min(cached);
                                    continue;
                                }
                            }
                            // Rank-scope gate: tRRD/tFAW bound every ACT on
                            // the rank, so a blocked rank disqualifies all
                            // of its pending activations with one
                            // comparison.
                            let rank_bound = channel.rank_act_bound(e.dram.bank);
                            if rank_bound > now {
                                hint = hint.min(rank_bound);
                                if use_cache {
                                    queue.set_act_ready_hint_oracle(i, rank_bound);
                                }
                            } else {
                                let cmd = DramCommand::Act {
                                    target: CommandTarget::from_bank_address(e.dram.bank),
                                    row: e.dram.row,
                                };
                                let at = channel.earliest_issue(&cmd, now);
                                if at <= now && channel.can_issue(&cmd, now) {
                                    act = Some((i, e.dram.row, e.dram.bank));
                                } else {
                                    let at = at.max(now + 1);
                                    hint = hint.min(at);
                                    if use_cache {
                                        queue.set_act_ready_hint_oracle(i, at);
                                    }
                                }
                            }
                        }
                        Some(open)
                            if open != e.dram.row
                        // Row conflict: precharge, but only if no queued
                        // request still wants the open row (fairness).
                        && pre.is_none() =>
                        {
                            let open_addr = rome_hbm::address::DramAddress {
                                channel: e.dram.channel,
                                bank: e.dram.bank,
                                row: open,
                                column: 0,
                            };
                            let still_wanted = queue.has_pending_row_hit(open_addr);
                            let cmd = DramCommand::Pre {
                                target: CommandTarget::from_bank_address(e.dram.bank),
                            };
                            if !still_wanted {
                                let at = channel.earliest_issue(&cmd, now);
                                if at <= now {
                                    pre = Some(e.dram.bank);
                                } else {
                                    hint = hint.min(at);
                                }
                            }
                        }
                        _ => {}
                    }
                    if act.is_some() {
                        break;
                    }
                }
                let action = if let Some((index, row, _bank)) = act {
                    Some(RowAction::Act { index, row })
                } else {
                    pre.map(|bank| RowAction::Pre { bank })
                };
                (action, hint)
            }
        };
        if hint != Cycle::MAX {
            self.hint_event(hint);
        }

        match action {
            Some(RowAction::Act { index, row }) => {
                let bank = {
                    let queue = self.active_queue();
                    queue.get(index).expect("index valid").dram.bank
                };
                let cmd = DramCommand::Act {
                    target: CommandTarget::from_bank_address(bank),
                    row,
                };
                self.channel.issue(cmd, now).expect("checked");
                let idx = self.bank_index(bank);
                if self.trace.commands() {
                    self.act_at[idx] = now;
                }
                self.set_open_row(idx, row);
                self.stats.row_misses += 1;
                true
            }
            Some(RowAction::Pre { bank }) => {
                let cmd = DramCommand::Pre {
                    target: CommandTarget::from_bank_address(bank),
                };
                self.channel.issue(cmd, now).expect("checked");
                let idx = self.bank_index(bank);
                self.trace_row_close(idx, now);
                self.clear_open_row(idx);
                self.stats.row_conflicts += 1;
                true
            }
            None => false,
        }
    }
}

/// Block size for the two-phase (branchless pre-pass) SoA scans. The
/// pre-pass sweeps one block at a time so an issuing tick still exits within
/// one block of the entry it picks, bounding the extra work versus a
/// straight one-pass walk to under a block per scan.
const PREPASS_BLOCK: usize = 32;

/// Flat index of `bank` within one channel of `org` (PC-major, then stack
/// ID, then bank group).
fn flat_bank_index(org: &Organization, bank: BankAddress) -> usize {
    let per_pc = org.banks_per_pseudo_channel() as usize;
    let per_sid = (org.bank_groups * org.banks_per_group) as usize;
    bank.pseudo_channel as usize * per_pc
        + bank.stack_id as usize * per_sid
        + bank.bank_group as usize * org.banks_per_group as usize
        + bank.bank as usize
}

impl rome_engine::MemoryController for ChannelController {
    type Entry = QueueEntry;

    fn enqueue(&mut self, request: MemoryRequest) -> bool {
        ChannelController::enqueue(self, request)
    }

    fn enqueue_entry(&mut self, entry: QueueEntry) -> bool {
        self.enqueue_mapped(entry)
    }

    fn entry_kind(entry: &QueueEntry) -> RequestKind {
        entry.request.kind
    }

    fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        ChannelController::tick_into(self, now, completed)
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        ChannelController::next_event_at(self, now)
    }

    fn is_idle(&self) -> bool {
        ChannelController::is_idle(self)
    }

    fn slots_free(&self) -> usize {
        ChannelController::slots_free(self)
    }

    fn slots_free_for(&self, kind: RequestKind) -> usize {
        match kind {
            RequestKind::Read => self.read_slots_free(),
            RequestKind::Write => self.write_slots_free(),
        }
    }

    fn stats_snapshot(&self) -> rome_engine::StatsSnapshot {
        let s = self.stats();
        rome_engine::StatsSnapshot {
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            // A cache-line-granularity controller moves exactly the useful
            // payload: no overfetch.
            bytes_transferred: s.bytes_total(),
            mean_read_latency: s.mean_read_latency(),
            row_hit_rate: s.row_hit_rate(),
            activates: s.dram.activates,
        }
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.trace.arm(config);
    }

    fn take_trace(&mut self) -> TraceBuffer {
        self.trace.harvest()
    }
}

fn column_command(entry: &QueueEntry, auto_precharge: bool) -> DramCommand {
    let target = CommandTarget::from_bank_address(entry.dram.bank);
    match entry.request.kind {
        RequestKind::Read => DramCommand::Rd {
            target,
            column: entry.dram.column,
            auto_precharge,
        },
        RequestKind::Write => DramCommand::Wr {
            target,
            column: entry.dram.column,
            auto_precharge,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn controller() -> ChannelController {
        ChannelController::new(ControllerConfig::hbm4_baseline())
    }

    fn run_until_idle(
        ctrl: &mut ChannelController,
        max_ns: Cycle,
    ) -> (Vec<CompletedRequest>, Cycle) {
        let mut done = Vec::new();
        let mut now = 0;
        while !ctrl.is_idle() && now < max_ns {
            done.extend(ctrl.tick(now));
            now += 1;
        }
        (done, now)
    }

    #[test]
    fn single_read_completes_with_act_rd_latency() {
        let mut ctrl = controller();
        assert!(ctrl.enqueue(MemoryRequest::read(1, 0, 32, 0)));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        // Latency = ACT->RD (tRCD=16) + CAS latency (16) + burst (1), plus a
        // couple of scheduling cycles.
        let lat = done[0].latency();
        assert!(
            (33..=40).contains(&lat),
            "latency {lat} outside expected window"
        );
        assert_eq!(ctrl.stats().reads_completed, 1);
        assert_eq!(ctrl.stats().bytes_read, 32);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn single_write_completes() {
        let mut ctrl = controller();
        assert!(ctrl.enqueue(MemoryRequest::write(1, 64, 32, 0)));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, RequestKind::Write);
        assert_eq!(ctrl.stats().writes_completed, 1);
        assert_eq!(ctrl.stats().bytes_written, 32);
    }

    #[test]
    fn sequential_reads_exploit_row_hits() {
        let mut ctrl = controller();
        // 64 consecutive cache lines: with the single-channel streaming
        // mapping these spread over PCs/BGs/banks but revisit open rows.
        for i in 0..64u64 {
            assert!(ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0)));
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 64);
        let s = ctrl.stats();
        assert_eq!(s.reads_completed, 64);
        assert_eq!(s.bytes_read, 64 * 32);
        // Far fewer activations than column accesses.
        assert!(s.dram.activates < 40, "activates = {}", s.dram.activates);
        assert!(s.row_hit_rate() > 0.4, "row hit rate {}", s.row_hit_rate());
    }

    #[test]
    fn streaming_reads_achieve_high_bus_utilization() {
        let mut ctrl = controller();
        let total: u64 = 512;
        let mut next = 0u64;
        let mut now = 0;
        let mut completed = 0u64;
        while completed < total && now < 200_000 {
            while next < total && ctrl.read_slots_free() > 0 {
                ctrl.enqueue(MemoryRequest::read(next, next * 32, 32, now));
                next += 1;
            }
            completed += ctrl.tick(now).len() as u64;
            now += 1;
        }
        assert_eq!(completed, total);
        let bytes = total * 32;
        let bw = bytes as f64 / now as f64;
        // Channel peak is 64 GB/s; a deep-queue FR-FCFS stream should reach
        // well over half of it once warmed up.
        assert!(
            bw > 32.0,
            "achieved bandwidth {bw:.1} GB/s too low (t={now})"
        );
    }

    #[test]
    fn queue_capacity_limits_acceptance() {
        let mut ctrl = ChannelController::new(ControllerConfig::hbm4_with_queue_depth(2));
        assert!(ctrl.enqueue(MemoryRequest::read(0, 0, 32, 0)));
        assert!(ctrl.enqueue(MemoryRequest::read(1, 32, 32, 0)));
        assert!(!ctrl.enqueue(MemoryRequest::read(2, 64, 32, 0)));
        assert_eq!(ctrl.read_slots_free(), 0);
        assert_eq!(ctrl.write_slots_free(), 2);
    }

    #[test]
    fn refresh_commands_are_issued_over_long_windows() {
        let mut ctrl = controller();
        // Idle controller for > tREFI_pb: refreshes must appear.
        for now in 0..20_000 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().refreshes_issued > 0);
        assert!(ctrl.channel().counters().refreshes_per_bank > 0);
    }

    #[test]
    fn write_drain_switches_modes() {
        let mut ctrl = controller();
        for i in 0..60u64 {
            ctrl.enqueue(MemoryRequest::write(i, i * 32, 32, 0));
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 60);
        assert_eq!(ctrl.stats().writes_completed, 60);
    }

    #[test]
    fn mixed_read_write_traffic_completes() {
        let mut ctrl = controller();
        for i in 0..32u64 {
            if i % 4 == 0 {
                ctrl.enqueue(MemoryRequest::write(i, 4096 + i * 32, 32, 0));
            } else {
                ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0));
            }
        }
        let (done, _) = run_until_idle(&mut ctrl, 100_000);
        assert_eq!(done.len(), 32);
        assert_eq!(ctrl.stats().writes_completed, 8);
        assert_eq!(ctrl.stats().reads_completed, 24);
    }

    #[test]
    fn closed_page_policy_precharges_aggressively() {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.page_policy = PagePolicy::Closed;
        let mut ctrl = ChannelController::new(cfg);
        for i in 0..16u64 {
            ctrl.enqueue(MemoryRequest::read(i, i * 32, 32, 0));
        }
        run_until_idle(&mut ctrl, 50_000);
        // Every column access auto-precharges, so activates ~= reads.
        let s = ctrl.stats();
        assert!(s.dram.activates as i64 >= s.dram.reads as i64 - 1);
    }

    #[test]
    fn fcfs_policy_still_completes_requests() {
        let mut cfg = ControllerConfig::hbm4_baseline();
        cfg.scheduling = SchedulingPolicy::Fcfs;
        let mut ctrl = ChannelController::new(cfg);
        for i in 0..8u64 {
            ctrl.enqueue(MemoryRequest::read(i, i * 4096, 32, 0));
        }
        let (done, _) = run_until_idle(&mut ctrl, 50_000);
        assert_eq!(done.len(), 8);
    }

    #[test]
    fn stats_idle_and_stall_cycles_accumulate() {
        let mut ctrl = controller();
        for now in 0..100 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().idle_cycles > 0);
        assert_eq!(ctrl.stats().total_cycles, 100);
    }

    /// From-scratch per-bank oracle for every bitmask the data-oriented scans
    /// consult: rebuilds each mask and count from first principles (the
    /// entries / the bank slab) and compares it to the incrementally
    /// maintained copy.
    fn assert_mask_invariants(ctrl: &ChannelController) {
        // Controller row-open mask ⇔ its own per-bank open-row mirror.
        for (b, open) in ctrl.open_rows.iter().enumerate() {
            let bit = ctrl.open_mask[b >> 6] >> (b & 63) & 1 == 1;
            assert_eq!(bit, open.is_some(), "controller mask bit {b} diverged");
        }
        // Channel row-open mask ⇔ a recount of the physical bank slab, and
        // the controller's mirror ⇔ the physical open row itself (refresh
        // only ever issues to precharged banks, so the mirror never lags).
        let mask = ctrl.channel.open_bank_mask();
        for (b, bank) in ctrl.channel.banks().enumerate() {
            let bit = mask[b >> 6] >> (b & 63) & 1 == 1;
            assert_eq!(bit, bank.is_active(), "channel mask bit {b} diverged");
            assert_eq!(ctrl.open_rows[b], bank.open_row(), "bank {b} row diverged");
        }
        // Queue per-bank counts and pending mask ⇔ a recount of the entries.
        for queue in [&ctrl.read_queue, &ctrl.write_queue] {
            let mut counts = vec![0u16; ctrl.indexer.banks()];
            for e in queue.iter() {
                counts[ctrl.indexer.flat(e.dram.bank)] += 1;
            }
            assert_eq!(
                queue.bank_counts(),
                counts.as_slice(),
                "bank counts diverged"
            );
            let mut pending = vec![0u64; counts.len().div_ceil(64)];
            for (b, &c) in counts.iter().enumerate() {
                if c > 0 {
                    pending[b >> 6] |= 1 << (b & 63);
                }
            }
            assert_eq!(
                queue.pending_mask_words(),
                pending.as_slice(),
                "pending mask diverged"
            );
            // Per-entry row-match / keep-open flags and per-bank
            // open-row-hit counts ⇔ a from-scratch recompute against the
            // controller's open rows (the incrementally maintained
            // adaptive-page-policy state the SoA row scan trusts).
            let mut hits = vec![0u16; ctrl.indexer.banks()];
            let mut row_match = Vec::new();
            for e in queue.iter() {
                let b = ctrl.indexer.flat(e.dram.bank);
                let hit = ctrl.open_rows[b] == Some(e.dram.row);
                row_match.push(hit as u8);
                hits[b] += hit as u16;
            }
            assert_eq!(
                queue.row_match_flags(),
                row_match.as_slice(),
                "row-match flags diverged"
            );
            assert_eq!(
                queue.open_row_hits(),
                hits.as_slice(),
                "open-row-hit counts diverged"
            );
            let keep: Vec<u8> = queue
                .iter()
                .map(|e| {
                    let b = ctrl.indexer.flat(e.dram.bank);
                    (ctrl.open_rows[b].is_some() && hits[b] > 0) as u8
                })
                .collect();
            assert_eq!(
                queue.keep_open_flags(),
                keep.as_slice(),
                "keep-open flags diverged"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random enqueue/issue/refresh sequences: after every tick, every
        /// bitmask the SoA scans consult must match a from-scratch per-bank
        /// recount, and the SoA and oracle controllers must stay in lockstep.
        #[test]
        fn bitmasks_match_a_from_scratch_per_bank_oracle(
            ops in prop::collection::vec((0u64..512, 0u64..2, 0u64..12), 1..32),
            refresh_mode in prop::sample::select(vec![RefreshMode::PerBank, RefreshMode::AllBank]),
        ) {
            let mut cfg = ControllerConfig::hbm4_with_queue_depth(32);
            cfg.refresh_mode = refresh_mode;
            let mut soa = ChannelController::new(cfg.clone());
            let mut cfg_plain = cfg;
            cfg_plain.soa = false;
            let mut plain = ChannelController::new(cfg_plain);
            let mut done_soa = Vec::new();
            let mut done_plain = Vec::new();
            let mut now = 0u64;
            for (i, &(seed, kind, gap)) in ops.iter().enumerate() {
                let addr = seed * 32;
                let req = if kind == 1 {
                    MemoryRequest::write(i as u64 + 1, addr, 32, now)
                } else {
                    MemoryRequest::read(i as u64 + 1, addr, 32, now)
                };
                prop_assert_eq!(soa.enqueue(req), plain.enqueue(req));
                for _ in 0..=gap {
                    done_soa.extend(soa.tick(now));
                    done_plain.extend(plain.tick(now));
                    assert_mask_invariants(&soa);
                    assert_mask_invariants(&plain);
                    now += 1;
                }
            }
            // Long idle drain so refreshes fire and banks close while the
            // oracle keeps checking every mutation point.
            let mut idle = 0u32;
            while (!soa.is_idle() || idle < 8_000) && now < 60_000 {
                if soa.is_idle() {
                    idle += 1;
                }
                done_soa.extend(soa.tick(now));
                done_plain.extend(plain.tick(now));
                assert_mask_invariants(&soa);
                assert_mask_invariants(&plain);
                now += 1;
            }
            prop_assert_eq!(done_soa, done_plain);
            prop_assert_eq!(soa.stats().refreshes_issued, plain.stats().refreshes_issued);
            prop_assert!(soa.stats().refreshes_issued > 0);
        }
    }
}
