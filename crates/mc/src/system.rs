//! Multi-channel memory system.
//!
//! [`MemorySystem`] models the memory side of one accelerator: a set of HBM
//! channels, each with its own [`ChannelController`], fronted by a shared
//! address-mapping function. Host requests of arbitrary size are fragmented
//! into controller-granularity transactions, steered to their channel, and
//! reassembled on completion.
//!
//! All of the event-driven plumbing — backlog back-pressure, the global-clock
//! tick path, `next_event_at`, and the parallel per-channel
//! [`MemorySystem::run_until_idle`] — lives in the generic
//! [`rome_engine::MultiChannelSystem`]; this type contributes only the HBM4
//! address decode and the aggregated [`ControllerStats`].
//!
//! For the large LLM experiments the system is also used in *sampled* mode:
//! only a subset of channels is instantiated and traffic is scaled
//! accordingly (`rome-sim` handles the scaling); the per-channel behaviour is
//! identical either way.

use serde::{Deserialize, Serialize};

use rome_engine::MultiChannelSystem;
use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use crate::controller::{ChannelController, ControllerConfig};
use crate::mapping::{AddressMapping, MappingScheme};
use crate::queue::QueueEntry;
use crate::request::{MemoryRequest, RequestId};
use crate::stats::ControllerStats;

pub use rome_engine::HostCompletion;

/// Configuration of a multi-channel memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Number of channels instantiated.
    pub channels: u16,
    /// Per-channel controller configuration.
    pub controller: ControllerConfig,
    /// System-level address mapping (across channels).
    pub mapping: MappingScheme,
    /// Fragment granularity presented to each controller, in bytes
    /// (32 B for the conventional system).
    pub access_granularity: u64,
}

impl MemorySystemConfig {
    /// A conventional HBM4 system with `channels` channels.
    pub fn hbm4(channels: u16) -> Self {
        let org = Organization::hbm4();
        let controller = ControllerConfig::hbm4_baseline();
        MemorySystemConfig {
            channels,
            mapping: MappingScheme::hbm4_streaming(org, channels),
            access_granularity: org.access_granularity as u64,
            controller,
        }
    }

    /// Peak bandwidth of the instantiated system in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.controller.organization.channel_bandwidth_gbps() * self.channels as f64
    }

    /// The DRAM timing used by every channel.
    pub fn timing(&self) -> &TimingParams {
        &self.controller.timing
    }
}

/// A multi-channel memory system: address mapping + one controller per
/// channel, on top of the generic engine system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    inner: MultiChannelSystem<ChannelController>,
}

impl MemorySystem {
    /// Build the system described by `config`.
    pub fn new(config: MemorySystemConfig) -> Self {
        let mut per_channel = config.controller.clone();
        // Each controller serves exactly one channel; its private mapping is
        // never used because the system decodes addresses first.
        per_channel.mapping = MappingScheme::hbm4_streaming(per_channel.organization, 1);
        let controllers = (0..config.channels)
            .map(|_| ChannelController::new(per_channel.clone()))
            .collect();
        MemorySystem {
            inner: MultiChannelSystem::new(controllers),
            config,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.inner.channels()
    }

    /// Aggregate statistics across all channels.
    pub fn stats(&self) -> ControllerStats {
        let mut out = ControllerStats::new();
        for c in self.inner.controllers() {
            out.merge(c.stats());
        }
        out
    }

    /// Per-channel bytes transferred so far (reads + writes), used for the
    /// channel-load-balance analysis.
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.inner.bytes_per_channel()
    }

    /// The engine-level statistics of the whole system (per-channel
    /// snapshots merged); feed to
    /// [`rome_engine::report_from_host_completions`] to summarize a system
    /// run as a unified [`rome_engine::SimulationReport`].
    pub fn stats_snapshot(&self) -> rome_engine::StatsSnapshot {
        self.inner.stats_merged()
    }

    /// Whether every queue, backlog entry, and in-flight transfer has
    /// drained.
    pub fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    /// Submit a host request, fragmenting it into controller transactions.
    /// Returns the id under which completions will be reported.
    pub fn submit(&mut self, request: MemoryRequest) -> RequestId {
        let MemorySystem { config, inner } = self;
        inner.submit_with(request, config.access_granularity, |frag| {
            let dram = config.mapping.map(frag.address);
            (
                dram.channel,
                QueueEntry {
                    request: frag,
                    dram,
                },
            )
        })
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`MemorySystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        self.inner.tick(now)
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a
    /// DRAM command.
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        self.inner.tick_into(now, completions)
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change, or at which a backlogged fragment could enter a queue. `None`
    /// when the whole system is quiescent. Takes `&mut self` because the
    /// underlying event calendar prunes stale heap entries lazily.
    pub fn next_event_at(&mut self, now: Cycle) -> Option<Cycle> {
        self.inner.next_event_at(now)
    }

    /// Enable or disable the incremental event calendar (enabled by
    /// default); results are bit-identical either way, only cost differs.
    /// See [`rome_engine::MultiChannelSystem::set_calendar`].
    pub fn set_calendar(&mut self, enabled: bool) {
        self.inner.set_calendar(enabled);
    }

    /// Enable or disable the data-oriented (struct-of-arrays) FR-FCFS scans
    /// on every channel controller (enabled by default); results are
    /// bit-identical either way, only cost differs. See
    /// [`ChannelController::set_soa`].
    pub fn set_soa(&mut self, enabled: bool) {
        for c in self.inner.controllers_mut() {
            c.set_soa(enabled);
        }
    }

    /// Run until all submitted requests complete or `max_ns` elapses; returns
    /// the completions (sorted by completion time, then id) and the cycle the
    /// run stopped at. Channels run their event-driven loops in parallel; see
    /// [`rome_engine::MultiChannelSystem::run_until_idle`].
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle) {
        self.inner.run_until_idle(max_ns)
    }

    /// Like [`MemorySystem::run_until_idle`] but metered against a
    /// [`rome_engine::RunBudget`] (each channel meters independently),
    /// returning the abort reason if any channel's budget tripped; see
    /// [`rome_engine::MultiChannelSystem::run_until_idle_budgeted`].
    pub fn run_until_idle_budgeted(
        &mut self,
        max_ns: Cycle,
        budget: &rome_engine::RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<rome_engine::AbortReason>) {
        self.inner.run_until_idle_budgeted(max_ns, budget)
    }

    /// Drive the system from a lazy [`rome_engine::TrafficSource`] until the
    /// source is exhausted and all its requests completed, or `max_ns`
    /// elapses. Completions are fed back to the source (closed-loop hosts
    /// key their next injection on them) and the source's arrivals merge
    /// into the event horizon; see
    /// [`rome_engine::MultiChannelSystem::run_with_source`].
    pub fn run_with_source<S: rome_engine::TrafficSource>(
        &mut self,
        source: &mut S,
        max_ns: Cycle,
    ) -> (Vec<HostCompletion>, Cycle) {
        let (completions, stop, _) =
            self.run_with_source_budgeted(source, max_ns, &rome_engine::RunBudget::unlimited());
        (completions, stop)
    }

    /// Like [`MemorySystem::run_with_source`] but metered against a
    /// [`rome_engine::RunBudget`] and with stalled-source detection,
    /// returning the abort reason alongside the completions; see
    /// [`rome_engine::MultiChannelSystem::run_with_source_budgeted`].
    pub fn run_with_source_budgeted<S: rome_engine::TrafficSource>(
        &mut self,
        source: &mut S,
        max_ns: Cycle,
        budget: &rome_engine::RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<rome_engine::AbortReason>) {
        let MemorySystem { config, inner } = self;
        inner.run_with_source_budgeted(
            source,
            config.access_granularity,
            max_ns,
            |frag| {
                let dram = config.mapping.map(frag.address);
                (
                    dram.channel,
                    QueueEntry {
                        request: frag,
                        dram,
                    },
                )
            },
            budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(channels: u16) -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::hbm4(channels))
    }

    #[test]
    fn host_request_fragments_across_channels_and_completes() {
        let mut sys = small_system(4);
        let id = sys.submit(MemoryRequest::read(1, 0, 4096, 0));
        assert_eq!(id, RequestId(1));
        let (done, t) = sys.run_until_idle(1_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 4096);
        assert!(t > 0);
        // All four channels must have moved data (channel-interleaved mapping).
        let per_chan = sys.bytes_per_channel();
        assert_eq!(per_chan.len(), 4);
        assert!(per_chan.iter().all(|&b| b == 1024), "{per_chan:?}");
    }

    #[test]
    fn auto_ids_are_assigned_when_zero() {
        let mut sys = small_system(2);
        let a = sys.submit(MemoryRequest::read(0, 0, 64, 0));
        let b = sys.submit(MemoryRequest::read(0, 4096, 64, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn writes_and_reads_both_complete() {
        let mut sys = small_system(2);
        sys.submit(MemoryRequest::read(1, 0, 1024, 0));
        sys.submit(MemoryRequest::write(2, 1 << 20, 1024, 0));
        let (done, _) = sys.run_until_idle(1_000_000);
        assert_eq!(done.len(), 2);
        let stats = sys.stats();
        assert_eq!(stats.bytes_read, 1024);
        assert_eq!(stats.bytes_written, 1024);
    }

    #[test]
    fn peak_bandwidth_scales_with_channels() {
        let cfg2 = MemorySystemConfig::hbm4(2);
        let cfg8 = MemorySystemConfig::hbm4(8);
        assert_eq!(cfg2.peak_bandwidth_gbps() * 4.0, cfg8.peak_bandwidth_gbps());
        assert_eq!(cfg8.peak_bandwidth_gbps(), 512.0);
    }

    #[test]
    fn truncated_run_keeps_unserved_fragments_pending() {
        // A time limit that expires mid-transfer must not lose work: the
        // undrained backlog returns to the system, is_idle() stays false,
        // and a follow-up run completes the host request.
        let mut sys = small_system(2);
        sys.submit(MemoryRequest::read(1, 0, 256 * 1024, 0));
        let (done, _) = sys.run_until_idle(200);
        assert!(done.is_empty());
        assert!(!sys.is_idle(), "truncated run must leave work pending");
        let (done, _) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 256 * 1024);
        assert!(sys.is_idle());
        assert_eq!(sys.stats().bytes_read, 256 * 1024);
    }

    #[test]
    fn large_streaming_transfer_spreads_evenly() {
        let mut sys = small_system(4);
        sys.submit(MemoryRequest::read(1, 0, 64 * 1024, 0));
        let (done, finish) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 1);
        let per_chan = sys.bytes_per_channel();
        let max = *per_chan.iter().max().unwrap() as f64;
        let min = *per_chan.iter().min().unwrap() as f64;
        assert!(min / max > 0.99, "channel imbalance: {per_chan:?}");
        // Aggregate bandwidth should exceed a single channel's peak.
        let bw = (64.0 * 1024.0) / finish as f64;
        assert!(bw > 64.0, "aggregate bandwidth {bw:.1} GB/s too low");
    }
}
