//! Multi-channel memory system.
//!
//! [`MemorySystem`] models the memory side of one accelerator: a set of HBM
//! channels, each with its own [`ChannelController`], fronted by a shared
//! address-mapping function. Host requests of arbitrary size are fragmented
//! into controller-granularity transactions, steered to their channel, and
//! reassembled on completion.
//!
//! For the large LLM experiments the system is also used in *sampled* mode:
//! only a subset of channels is instantiated and traffic is scaled
//! accordingly (`rome-sim` handles the scaling); the per-channel behaviour is
//! identical either way.

use std::collections::{HashMap, VecDeque};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use crate::controller::{ChannelController, ControllerConfig};
use crate::mapping::{AddressMapping, MappingScheme};
use crate::queue::QueueEntry;
use crate::request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};
use crate::stats::ControllerStats;

/// Configuration of a multi-channel memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Number of channels instantiated.
    pub channels: u16,
    /// Per-channel controller configuration.
    pub controller: ControllerConfig,
    /// System-level address mapping (across channels).
    pub mapping: MappingScheme,
    /// Fragment granularity presented to each controller, in bytes
    /// (32 B for the conventional system).
    pub access_granularity: u64,
}

impl MemorySystemConfig {
    /// A conventional HBM4 system with `channels` channels.
    pub fn hbm4(channels: u16) -> Self {
        let org = Organization::hbm4();
        let controller = ControllerConfig::hbm4_baseline();
        MemorySystemConfig {
            channels,
            mapping: MappingScheme::hbm4_streaming(org, channels),
            access_granularity: org.access_granularity as u64,
            controller,
        }
    }

    /// Peak bandwidth of the instantiated system in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.controller.organization.channel_bandwidth_gbps() * self.channels as f64
    }

    /// The DRAM timing used by every channel.
    pub fn timing(&self) -> &TimingParams {
        &self.controller.timing
    }
}

/// A completed host-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCompletion {
    /// The host request id.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Total bytes of the host request.
    pub bytes: u64,
    /// Arrival cycle of the host request.
    pub arrival: Cycle,
    /// Cycle at which the last fragment completed.
    pub completed: Cycle,
}

#[derive(Debug, Clone)]
struct HostTracker {
    kind: RequestKind,
    bytes: u64,
    arrival: Cycle,
    fragments_outstanding: u64,
    last_completion: Cycle,
}

/// A multi-channel memory system: address mapping + one controller per
/// channel.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    controllers: Vec<ChannelController>,
    /// Fragments waiting for a free slot in their channel's queue.
    backlog: Vec<QueueEntry>,
    host_requests: HashMap<RequestId, HostTracker>,
    next_auto_id: u64,
    /// Reused per-tick completion buffer (avoids an allocation per channel
    /// per cycle).
    scratch: Vec<CompletedRequest>,
}

impl MemorySystem {
    /// Build the system described by `config`.
    pub fn new(config: MemorySystemConfig) -> Self {
        let mut per_channel = config.controller.clone();
        // Each controller serves exactly one channel; its private mapping is
        // never used because the system decodes addresses first.
        per_channel.mapping = MappingScheme::hbm4_streaming(per_channel.organization, 1);
        let controllers = (0..config.channels)
            .map(|_| ChannelController::new(per_channel.clone()))
            .collect();
        MemorySystem {
            controllers,
            backlog: Vec::new(),
            host_requests: HashMap::new(),
            next_auto_id: 1 << 48,
            scratch: Vec::new(),
            config,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// Aggregate statistics across all channels.
    pub fn stats(&self) -> ControllerStats {
        let mut out = ControllerStats::new();
        for c in &self.controllers {
            out.merge(c.stats());
        }
        out
    }

    /// Per-channel bytes transferred so far (reads + writes), used for the
    /// channel-load-balance analysis.
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(|c| c.stats().bytes_total())
            .collect()
    }

    /// Whether every queue, backlog entry, and in-flight transfer has
    /// drained.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.controllers.iter().all(|c| c.is_idle())
    }

    /// Submit a host request, fragmenting it into controller transactions.
    /// Returns the id under which completions will be reported.
    pub fn submit(&mut self, mut request: MemoryRequest) -> RequestId {
        if request.id.0 == 0 {
            request.id = RequestId(self.next_auto_id);
            self.next_auto_id += 1;
        }
        let fragments = request.fragments(self.config.access_granularity);
        self.host_requests.insert(
            request.id,
            HostTracker {
                kind: request.kind,
                bytes: request.bytes,
                arrival: request.arrival,
                fragments_outstanding: fragments.len() as u64,
                last_completion: 0,
            },
        );
        for frag in fragments {
            let dram = self.config.mapping.map(frag.address);
            self.backlog.push(QueueEntry {
                request: frag,
                dram,
            });
        }
        request.id
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`MemorySystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a
    /// DRAM command.
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        // Drain the backlog into per-channel queues while slots are free.
        let mut i = 0;
        while i < self.backlog.len() {
            let channel = self.backlog[i].dram.channel as usize % self.controllers.len();
            let entry = self.backlog[i];
            let ctrl = &mut self.controllers[channel];
            let free = match entry.request.kind {
                RequestKind::Read => ctrl.read_slots_free(),
                RequestKind::Write => ctrl.write_slots_free(),
            };
            if free > 0 {
                let ok = ctrl.enqueue_mapped(entry);
                debug_assert!(ok);
                self.backlog.swap_remove(i);
            } else {
                i += 1;
            }
        }

        let before = completions.len();
        let mut issued = false;
        let MemorySystem {
            controllers,
            scratch,
            host_requests,
            ..
        } = self;
        for ctrl in controllers.iter_mut() {
            issued |= ctrl.tick_into(now, scratch);
            for done in scratch.drain(..) {
                if let Some(tracker) = host_requests.get_mut(&done.id) {
                    tracker.fragments_outstanding -= 1;
                    tracker.last_completion = tracker.last_completion.max(done.completed);
                    if tracker.fragments_outstanding == 0 {
                        completions.push(HostCompletion {
                            id: done.id,
                            kind: tracker.kind,
                            bytes: tracker.bytes,
                            arrival: tracker.arrival,
                            completed: tracker.last_completion,
                        });
                    }
                }
            }
        }
        for c in &completions[before..] {
            self.host_requests.remove(&c.id);
        }
        issued
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change (see [`ChannelController::next_event_at`]), or at which a
    /// backlogged fragment could enter a queue. `None` when the whole system
    /// is quiescent.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: Cycle| n.min(t)));
        };
        for entry in &self.backlog {
            let ctrl = &self.controllers[entry.dram.channel as usize % self.controllers.len()];
            let free = match entry.request.kind {
                RequestKind::Read => ctrl.read_slots_free(),
                RequestKind::Write => ctrl.write_slots_free(),
            };
            if free > 0 {
                consider(now + 1);
                break;
            }
        }
        for ctrl in &self.controllers {
            if let Some(t) = ctrl.next_event_at(now) {
                consider(t);
            }
        }
        next
    }

    /// Run until all submitted requests complete or `max_ns` elapses; returns
    /// the completions (sorted by completion time, then id) and the cycle the
    /// run stopped at.
    ///
    /// Channels share no state once fragments are steered, so each channel
    /// runs its own event-driven loop to completion — in parallel across
    /// channels — and the fragment completions are merged into host
    /// completions afterwards. Within a channel, fragments enter the queues
    /// in per-kind FIFO order, whereas the per-cycle [`MemorySystem::tick`]
    /// path drains a shared backlog whose order `swap_remove` scrambles;
    /// the two paths therefore execute slightly different (both valid)
    /// schedules. Totals — completion counts, bytes, per-channel byte
    /// distribution — are identical; per-request completion *times* may
    /// differ. The equivalence suite pins the invariants.
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle) {
        let channels = self.controllers.len();
        let mut backlogs: Vec<ChannelBacklog> = vec![ChannelBacklog::default(); channels];
        for entry in self.backlog.drain(..) {
            let backlog = &mut backlogs[entry.dram.channel as usize % channels];
            match entry.request.kind {
                RequestKind::Read => backlog.reads.push_back(entry),
                RequestKind::Write => backlog.writes.push_back(entry),
            }
        }

        let tasks: Vec<(&mut ChannelController, ChannelBacklog)> =
            self.controllers.iter_mut().zip(backlogs).collect();
        let per_channel: Vec<(Vec<CompletedRequest>, Cycle)> = tasks
            .into_par_iter()
            .map(|(ctrl, backlog)| run_channel_until_idle(ctrl, backlog, max_ns))
            .collect();

        let mut stop = 0;
        let mut fragments = Vec::new();
        for (done, t) in per_channel {
            stop = stop.max(t);
            fragments.extend(done);
        }
        fragments.sort_unstable_by_key(|c| (c.completed, c.id.0));

        let mut completions = Vec::new();
        for done in fragments {
            if let Some(tracker) = self.host_requests.get_mut(&done.id) {
                tracker.fragments_outstanding -= 1;
                tracker.last_completion = tracker.last_completion.max(done.completed);
                if tracker.fragments_outstanding == 0 {
                    completions.push(HostCompletion {
                        id: done.id,
                        kind: tracker.kind,
                        bytes: tracker.bytes,
                        arrival: tracker.arrival,
                        completed: tracker.last_completion,
                    });
                }
            }
        }
        for c in &completions {
            self.host_requests.remove(&c.id);
        }
        (completions, stop)
    }
}

/// One channel's share of the pending fragments, split by kind so the drain
/// is kind-aware like the per-cycle `tick` path: a write whose queue has
/// space enqueues even while an older read waits for a read slot (and vice
/// versa); order within each kind is preserved.
#[derive(Debug, Clone, Default)]
struct ChannelBacklog {
    reads: VecDeque<QueueEntry>,
    writes: VecDeque<QueueEntry>,
}

impl ChannelBacklog {
    fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Move every acceptable fragment into the controller's queues.
    fn drain_into(&mut self, ctrl: &mut ChannelController) {
        while !self.reads.is_empty() && ctrl.read_slots_free() > 0 {
            let ok = ctrl.enqueue_mapped(self.reads.pop_front().expect("checked non-empty"));
            debug_assert!(ok);
        }
        while !self.writes.is_empty() && ctrl.write_slots_free() > 0 {
            let ok = ctrl.enqueue_mapped(self.writes.pop_front().expect("checked non-empty"));
            debug_assert!(ok);
        }
    }

    /// Whether any held fragment could enqueue right now.
    fn can_enqueue(&self, ctrl: &ChannelController) -> bool {
        (!self.reads.is_empty() && ctrl.read_slots_free() > 0)
            || (!self.writes.is_empty() && ctrl.write_slots_free() > 0)
    }
}

/// Event-driven loop for one channel: feed it its share of the backlog,
/// advance to the next event after every no-op tick, and return the fragment
/// completions plus the cycle the channel went idle (or `max_ns`).
fn run_channel_until_idle(
    ctrl: &mut ChannelController,
    mut backlog: ChannelBacklog,
    max_ns: Cycle,
) -> (Vec<CompletedRequest>, Cycle) {
    let mut done = Vec::new();
    let mut now = 0;
    let mut stop = 0;
    while (!backlog.is_empty() || !ctrl.is_idle()) && now < max_ns {
        backlog.drain_into(ctrl);
        let issued = ctrl.tick_into(now, &mut done);
        stop = now + 1;
        let arrival_next = backlog.can_enqueue(ctrl);
        now = if issued || arrival_next {
            now + 1
        } else {
            ctrl.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    let finished = backlog.is_empty() && ctrl.is_idle();
    (done, if finished { stop } else { max_ns })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(channels: u16) -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::hbm4(channels))
    }

    #[test]
    fn host_request_fragments_across_channels_and_completes() {
        let mut sys = small_system(4);
        let id = sys.submit(MemoryRequest::read(1, 0, 4096, 0));
        assert_eq!(id, RequestId(1));
        let (done, t) = sys.run_until_idle(1_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 4096);
        assert!(t > 0);
        // All four channels must have moved data (channel-interleaved mapping).
        let per_chan = sys.bytes_per_channel();
        assert_eq!(per_chan.len(), 4);
        assert!(per_chan.iter().all(|&b| b == 1024), "{per_chan:?}");
    }

    #[test]
    fn auto_ids_are_assigned_when_zero() {
        let mut sys = small_system(2);
        let a = sys.submit(MemoryRequest::read(0, 0, 64, 0));
        let b = sys.submit(MemoryRequest::read(0, 4096, 64, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn writes_and_reads_both_complete() {
        let mut sys = small_system(2);
        sys.submit(MemoryRequest::read(1, 0, 1024, 0));
        sys.submit(MemoryRequest::write(2, 1 << 20, 1024, 0));
        let (done, _) = sys.run_until_idle(1_000_000);
        assert_eq!(done.len(), 2);
        let stats = sys.stats();
        assert_eq!(stats.bytes_read, 1024);
        assert_eq!(stats.bytes_written, 1024);
    }

    #[test]
    fn peak_bandwidth_scales_with_channels() {
        let cfg2 = MemorySystemConfig::hbm4(2);
        let cfg8 = MemorySystemConfig::hbm4(8);
        assert_eq!(cfg2.peak_bandwidth_gbps() * 4.0, cfg8.peak_bandwidth_gbps());
        assert_eq!(cfg8.peak_bandwidth_gbps(), 512.0);
    }

    #[test]
    fn large_streaming_transfer_spreads_evenly() {
        let mut sys = small_system(4);
        sys.submit(MemoryRequest::read(1, 0, 64 * 1024, 0));
        let (done, finish) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 1);
        let per_chan = sys.bytes_per_channel();
        let max = *per_chan.iter().max().unwrap() as f64;
        let min = *per_chan.iter().min().unwrap() as f64;
        assert!(min / max > 0.99, "channel imbalance: {per_chan:?}");
        // Aggregate bandwidth should exceed a single channel's peak.
        let bw = (64.0 * 1024.0) / finish as f64;
        assert!(bw > 64.0, "aggregate bandwidth {bw:.1} GB/s too low");
    }
}
