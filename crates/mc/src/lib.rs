//! # rome-mc — conventional HBM memory controller
//!
//! This crate implements the baseline the RoMe paper compares against: a
//! conventional cache-line-granularity HBM4 memory controller (§II-D of the
//! paper). It provides:
//!
//! * memory requests and their lifecycle ([`request`], re-exported from
//!   `rome-engine`, whose `MemoryController` trait and generic event-driven
//!   drivers this controller plugs into);
//! * configurable DRAM **address mapping** functions ([`mapping`]);
//! * CAM-style read/write **request queues** ([`queue`]);
//! * **page policies** — open, closed, adaptive ([`page_policy`]);
//! * the **FR-FCFS command scheduler** with per-bank state logic, refresh
//!   scheduling, and age-based QoS ([`controller`]);
//! * a **multi-channel memory system** that fragments host requests into
//!   cache-line DRAM transactions and steers them by the address mapping
//!   ([`system`]);
//! * synthetic **workload generators** (streaming, strided, random) used by
//!   the queue-depth and VBA design-space experiments ([`workload`]);
//! * bandwidth/latency/row-locality **statistics** ([`stats`]).
//!
//! The controller drives the cycle-accurate [`rome_hbm::HbmChannel`] model;
//! every DRAM command it emits is validated against the full HBM4 timing.
//!
//! # Example
//!
//! ```
//! use rome_mc::prelude::*;
//!
//! // Single-channel controller with the default HBM4 configuration.
//! let config = ControllerConfig::hbm4_baseline();
//! let mut ctrl = ChannelController::new(config);
//!
//! // Stream 4 KiB of reads through it.
//! let reqs = rome_mc::workload::streaming_reads(0x0, 4096, 32);
//! let report = rome_mc::simulate::run_to_completion(&mut ctrl, reqs);
//! assert_eq!(report.bytes_read, 4096);
//! assert!(report.achieved_bandwidth_gbps > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod mapping;
pub mod page_policy;
pub mod queue;
pub mod simulate;
pub mod stats;
pub mod system;
pub mod workload;

pub use rome_engine::request;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::controller::{ChannelController, ControllerConfig, SchedulingPolicy};
    pub use crate::mapping::{AddressMapping, MappingField, MappingScheme};
    pub use crate::page_policy::PagePolicy;
    pub use crate::queue::{BankIndexer, RequestQueue};
    pub use crate::request::{MemoryRequest, RequestId, RequestKind};
    pub use crate::simulate::{run_to_completion, SimulationReport};
    pub use crate::stats::ControllerStats;
    pub use crate::system::{MemorySystem, MemorySystemConfig};
}

pub use controller::{ChannelController, ControllerConfig, SchedulingPolicy};
pub use mapping::{AddressMapping, MappingField, MappingScheme};
pub use page_policy::PagePolicy;
pub use request::{MemoryRequest, RequestId, RequestKind};
pub use stats::ControllerStats;
pub use system::{MemorySystem, MemorySystemConfig};
