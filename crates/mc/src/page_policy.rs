//! Row-buffer (page) policies.
//!
//! After serving a column access, a conventional controller must decide when
//! to precharge the open row: keep it open hoping for further hits
//! (open-page), close it immediately (closed-page), or adapt based on pending
//! requests (adaptive). The paper's baseline uses an open-page policy; RoMe
//! removes the decision entirely because every `RD_row`/`WR_row` precharges
//! as part of its fixed command sequence (§V-A).

use serde::{Deserialize, Serialize};

/// The page policy used by a conventional memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep rows open after column accesses; precharge only on a conflict or
    /// before refresh.
    #[default]
    Open,
    /// Precharge immediately after every column access (auto-precharge).
    Closed,
    /// Keep the row open only while the request queue holds another request
    /// to the same row.
    Adaptive,
}

impl PagePolicy {
    /// Decide whether the column access being issued should carry
    /// auto-precharge, given whether the queue holds another request to the
    /// same open row.
    pub fn auto_precharge(self, pending_row_hit: bool) -> bool {
        match self {
            PagePolicy::Open => false,
            PagePolicy::Closed => true,
            PagePolicy::Adaptive => !pending_row_hit,
        }
    }

    /// Human-readable name (used in experiment tables).
    pub fn name(self) -> &'static str {
        match self {
            PagePolicy::Open => "open",
            PagePolicy::Closed => "closed",
            PagePolicy::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_auto_precharges() {
        assert!(!PagePolicy::Open.auto_precharge(true));
        assert!(!PagePolicy::Open.auto_precharge(false));
    }

    #[test]
    fn closed_always_auto_precharges() {
        assert!(PagePolicy::Closed.auto_precharge(true));
        assert!(PagePolicy::Closed.auto_precharge(false));
    }

    #[test]
    fn adaptive_follows_pending_hits() {
        assert!(!PagePolicy::Adaptive.auto_precharge(true));
        assert!(PagePolicy::Adaptive.auto_precharge(false));
    }

    #[test]
    fn default_and_display() {
        assert_eq!(PagePolicy::default(), PagePolicy::Open);
        assert_eq!(PagePolicy::Open.to_string(), "open");
        assert_eq!(PagePolicy::Adaptive.name(), "adaptive");
    }
}
