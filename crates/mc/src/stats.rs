//! Controller statistics: bandwidth, latency, row-buffer locality, queue
//! occupancy.

use serde::{Deserialize, Serialize};

use rome_hbm::counters::ChannelCounters;
use rome_hbm::units::Cycle;

/// Statistics accumulated by one channel controller.
///
/// Event counts (completions, bytes, latencies, row hits/misses, DRAM
/// command counters) are exact regardless of how the controller is driven.
/// The *per-tick* fields — `total_cycles`, `stall_cycles`, `idle_cycles`,
/// and the queue-occupancy samples — count executed scheduling ticks: under
/// a cycle-stepped driver that is one per nanosecond, while an event-driven
/// driver skips provably idle nanoseconds, so those fields then count
/// scheduling *opportunities* rather than wall nanoseconds (occupancy
/// samples are correspondingly taken at event cycles only). Use
/// `run_with_limit_stepped` when per-nanosecond stall/idle accounting is
/// the quantity of interest.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Completed read fragments.
    pub reads_completed: u64,
    /// Completed write fragments.
    pub writes_completed: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes absorbed by writes.
    pub bytes_written: u64,
    /// Sum of read latencies (arrival to data completion) in ns.
    pub total_read_latency: u64,
    /// Maximum observed read latency in ns.
    pub max_read_latency: u64,
    /// Column accesses that hit an already-open row.
    pub row_hits: u64,
    /// Column accesses that required opening a closed row.
    pub row_misses: u64,
    /// Column accesses that required closing a different open row first.
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes_issued: u64,
    /// Scheduling cycles during which no command could be issued although
    /// work was pending (a measure of timing-induced bubbles).
    pub stall_cycles: u64,
    /// Scheduling cycles during which the controller had no pending work.
    pub idle_cycles: u64,
    /// Total scheduling cycles observed.
    pub total_cycles: u64,
    /// Mean request-queue occupancy (sampled per cycle).
    pub mean_queue_occupancy: f64,
    /// Peak request-queue occupancy.
    pub peak_queue_occupancy: usize,
    /// Raw DRAM command/data counters from the device model.
    pub dram: ChannelCounters,
}

impl ControllerStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        ControllerStats::default()
    }

    /// Total completed fragments.
    pub fn requests_completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Mean read latency in ns (0 when no reads completed).
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }

    /// Row-buffer hit rate over all column accesses (0 when none).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Achieved bandwidth over an elapsed window of `elapsed` ns, in GB/s.
    pub fn achieved_bandwidth_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_total() as f64 / elapsed as f64
        }
    }

    /// Merge per-channel statistics (used by the multi-channel system).
    pub fn merge(&mut self, other: &ControllerStats) {
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.total_read_latency += other.total_read_latency;
        self.max_read_latency = self.max_read_latency.max(other.max_read_latency);
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.refreshes_issued += other.refreshes_issued;
        self.stall_cycles += other.stall_cycles;
        self.idle_cycles += other.idle_cycles;
        self.total_cycles = self.total_cycles.max(other.total_cycles);
        // Occupancy means are averaged weighted equally per channel.
        self.mean_queue_occupancy = (self.mean_queue_occupancy + other.mean_queue_occupancy) / 2.0;
        self.peak_queue_occupancy = self.peak_queue_occupancy.max(other.peak_queue_occupancy);
        self.dram.merge(&other.dram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ControllerStats {
            reads_completed: 4,
            writes_completed: 1,
            bytes_read: 128,
            bytes_written: 32,
            total_read_latency: 200,
            max_read_latency: 90,
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            ..ControllerStats::new()
        };
        assert_eq!(s.requests_completed(), 5);
        assert_eq!(s.bytes_total(), 160);
        assert_eq!(s.mean_read_latency(), 50.0);
        assert_eq!(s.row_hit_rate(), 0.75);
        assert_eq!(s.achieved_bandwidth_gbps(10), 16.0);
        assert_eq!(s.achieved_bandwidth_gbps(0), 0.0);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = ControllerStats::new();
        assert_eq!(s.mean_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn merge_combines_channels() {
        let mut a = ControllerStats {
            reads_completed: 2,
            bytes_read: 64,
            max_read_latency: 50,
            mean_queue_occupancy: 4.0,
            peak_queue_occupancy: 8,
            total_cycles: 100,
            ..ControllerStats::new()
        };
        let b = ControllerStats {
            reads_completed: 3,
            bytes_read: 96,
            max_read_latency: 80,
            mean_queue_occupancy: 2.0,
            peak_queue_occupancy: 5,
            total_cycles: 120,
            ..ControllerStats::new()
        };
        a.merge(&b);
        assert_eq!(a.reads_completed, 5);
        assert_eq!(a.bytes_read, 160);
        assert_eq!(a.max_read_latency, 80);
        assert_eq!(a.mean_queue_occupancy, 3.0);
        assert_eq!(a.peak_queue_occupancy, 8);
        assert_eq!(a.total_cycles, 120);
    }
}
