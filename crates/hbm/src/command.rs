//! DRAM commands and their targets.
//!
//! The conventional HBM command set exposed to the memory controller consists
//! of row commands (`ACT`, `PRE`, `PREab`, refresh) and column commands
//! (`RD`, `WR`, optionally with auto-precharge). RoMe's `RD_row`/`WR_row`
//! commands are defined in `rome-core`; the command generator expands them
//! into sequences of these conventional commands.

use serde::{Deserialize, Serialize};

use crate::address::BankAddress;

/// The scope a command applies to inside one channel.
///
/// Most commands target a single bank; refresh and precharge-all variants
/// target a whole pseudo channel (per stack ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommandTarget {
    /// Bank coordinates; for all-bank commands the `bank_group`/`bank` fields
    /// are ignored but kept so the type stays `Copy` and cheap.
    pub bank: BankAddress,
}

impl CommandTarget {
    /// Target a specific bank.
    pub const fn bank(pseudo_channel: u8, stack_id: u8, bank_group: u8, bank: u8) -> Self {
        CommandTarget {
            bank: BankAddress::new(pseudo_channel, stack_id, bank_group, bank),
        }
    }

    /// Target constructed from an existing [`BankAddress`].
    pub const fn from_bank_address(bank: BankAddress) -> Self {
        CommandTarget { bank }
    }
}

impl std::fmt::Display for CommandTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bank)
    }
}

/// A conventional DRAM command as issued over the C/A bus of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Activate (open) `row` in the targeted bank.
    Act {
        /// The bank the activation targets.
        target: CommandTarget,
        /// The row to open.
        row: u32,
    },
    /// Precharge (close) the open row of the targeted bank.
    Pre {
        /// The bank to precharge.
        target: CommandTarget,
    },
    /// Precharge all banks of the targeted pseudo channel + stack ID.
    PreAll {
        /// Identifies the pseudo channel and stack ID; bank fields ignored.
        target: CommandTarget,
    },
    /// Column read of one burst (32 B per pseudo channel for HBM4).
    Rd {
        /// The bank to read from (its row must be open).
        target: CommandTarget,
        /// Column address in access-granularity units.
        column: u16,
        /// Whether the bank auto-precharges after the read (RDA).
        auto_precharge: bool,
    },
    /// Column write of one burst.
    Wr {
        /// The bank to write to (its row must be open).
        target: CommandTarget,
        /// Column address in access-granularity units.
        column: u16,
        /// Whether the bank auto-precharges after the write (WRA).
        auto_precharge: bool,
    },
    /// Per-bank refresh (REFpb) of the targeted bank.
    RefPerBank {
        /// The bank to refresh.
        target: CommandTarget,
    },
    /// All-bank refresh (REFab) of the targeted pseudo channel + stack ID.
    RefAllBank {
        /// Identifies the pseudo channel and stack ID; bank fields ignored.
        target: CommandTarget,
    },
    /// Mode-register set; occupies the row C/A bus but has no bank effect in
    /// this model.
    Mrs {
        /// Pseudo channel + stack ID the MRS is directed at.
        target: CommandTarget,
    },
}

impl DramCommand {
    /// The command's target coordinates.
    pub fn target(&self) -> CommandTarget {
        match *self {
            DramCommand::Act { target, .. }
            | DramCommand::Pre { target }
            | DramCommand::PreAll { target }
            | DramCommand::Rd { target, .. }
            | DramCommand::Wr { target, .. }
            | DramCommand::RefPerBank { target }
            | DramCommand::RefAllBank { target }
            | DramCommand::Mrs { target } => target,
        }
    }

    /// The coarse command kind, used to index timing-constraint tables.
    pub fn kind(&self) -> CommandKind {
        match self {
            DramCommand::Act { .. } => CommandKind::Act,
            DramCommand::Pre { .. } => CommandKind::Pre,
            DramCommand::PreAll { .. } => CommandKind::PreAll,
            DramCommand::Rd { .. } => CommandKind::Rd,
            DramCommand::Wr { .. } => CommandKind::Wr,
            DramCommand::RefPerBank { .. } => CommandKind::RefPb,
            DramCommand::RefAllBank { .. } => CommandKind::RefAb,
            DramCommand::Mrs { .. } => CommandKind::Mrs,
        }
    }

    /// Whether this command transfers data on the DQ bus.
    pub fn is_column(&self) -> bool {
        matches!(self, DramCommand::Rd { .. } | DramCommand::Wr { .. })
    }

    /// Whether this command is carried on the row C/A pins (ACT, PRE,
    /// refresh, MRS) as opposed to the column C/A pins (RD, WR).
    pub fn uses_row_ca_pins(&self) -> bool {
        !self.is_column()
    }

    /// Whether the command targets the whole pseudo channel (per SID) rather
    /// than a single bank.
    pub fn is_all_bank(&self) -> bool {
        matches!(
            self,
            DramCommand::PreAll { .. } | DramCommand::RefAllBank { .. }
        )
    }
}

/// Coarse classification of DRAM commands, used as the key of timing tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommandKind {
    /// Row activation.
    Act,
    /// Single-bank precharge.
    Pre,
    /// All-bank precharge.
    PreAll,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Per-bank refresh.
    RefPb,
    /// All-bank refresh.
    RefAb,
    /// Mode register set.
    Mrs,
}

impl CommandKind {
    /// All command kinds, in a stable order (useful for iteration in tables).
    pub const ALL: [CommandKind; 8] = [
        CommandKind::Act,
        CommandKind::Pre,
        CommandKind::PreAll,
        CommandKind::Rd,
        CommandKind::Wr,
        CommandKind::RefPb,
        CommandKind::RefAb,
        CommandKind::Mrs,
    ];

    /// A dense index for array-backed tables.
    pub const fn index(self) -> usize {
        match self {
            CommandKind::Act => 0,
            CommandKind::Pre => 1,
            CommandKind::PreAll => 2,
            CommandKind::Rd => 3,
            CommandKind::Wr => 4,
            CommandKind::RefPb => 5,
            CommandKind::RefAb => 6,
            CommandKind::Mrs => 7,
        }
    }

    /// Number of distinct command kinds.
    pub const COUNT: usize = 8;
}

impl std::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommandKind::Act => "ACT",
            CommandKind::Pre => "PRE",
            CommandKind::PreAll => "PREab",
            CommandKind::Rd => "RD",
            CommandKind::Wr => "WR",
            CommandKind::RefPb => "REFpb",
            CommandKind::RefAb => "REFab",
            CommandKind::Mrs => "MRS",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> CommandTarget {
        CommandTarget::bank(1, 0, 2, 3)
    }

    #[test]
    fn command_kind_round_trips_through_index() {
        for (i, k) in CommandKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(CommandKind::ALL.len(), CommandKind::COUNT);
    }

    #[test]
    fn command_classification() {
        let rd = DramCommand::Rd {
            target: t(),
            column: 0,
            auto_precharge: false,
        };
        let wr = DramCommand::Wr {
            target: t(),
            column: 5,
            auto_precharge: true,
        };
        let act = DramCommand::Act {
            target: t(),
            row: 9,
        };
        let refab = DramCommand::RefAllBank { target: t() };

        assert!(rd.is_column());
        assert!(wr.is_column());
        assert!(!act.is_column());
        assert!(act.uses_row_ca_pins());
        assert!(!rd.uses_row_ca_pins());
        assert!(refab.is_all_bank());
        assert!(!rd.is_all_bank());
        assert_eq!(rd.kind(), CommandKind::Rd);
        assert_eq!(wr.kind(), CommandKind::Wr);
        assert_eq!(act.kind(), CommandKind::Act);
        assert_eq!(refab.kind(), CommandKind::RefAb);
    }

    #[test]
    fn command_target_accessor_matches_constructor() {
        let c = DramCommand::Pre { target: t() };
        assert_eq!(c.target(), t());
        assert_eq!(c.target().to_string(), "PC1/SID0/BG2/BA3");
        assert_eq!(c.kind().to_string(), "PRE");
    }

    #[test]
    fn kind_display_names_are_conventional() {
        assert_eq!(CommandKind::Act.to_string(), "ACT");
        assert_eq!(CommandKind::RefPb.to_string(), "REFpb");
        assert_eq!(CommandKind::Mrs.to_string(), "MRS");
        assert_eq!(CommandKind::PreAll.to_string(), "PREab");
    }
}
