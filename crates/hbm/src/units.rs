//! Base units used throughout the memory-system model.
//!
//! All DRAM timing is expressed in integer nanoseconds. At HBM4's 8 Gb/s data
//! rate a 32-byte burst on a 32-bit pseudo channel occupies the data bus for
//! exactly one nanosecond, so `1 ns == 1 column-command slot (tCCDS)`. Using a
//! plain integer keeps the hot simulation loops allocation- and
//! rounding-free; higher layers convert to seconds only when reporting.

use serde::{Deserialize, Serialize};

/// Simulation time in nanoseconds (one "cycle" of the model).
pub type Cycle = u64;

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;

/// One mebibyte (1024 * 1024 bytes).
pub const MIB: u64 = 1024 * 1024;

/// One gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// The cache-line-sized access granularity of a conventional HBM4 pseudo
/// channel (GPU cache line, §II-A of the paper).
pub const CACHE_LINE_BYTES: u64 = 32;

/// Convert a byte count and a duration in nanoseconds into GB/s
/// (decimal gigabytes, as used for bandwidth figures in the paper).
///
/// Returns `0.0` when `ns == 0`.
///
/// ```
/// // 32 bytes in 1 ns is 32 GB/s, the HBM4 per-PC bandwidth.
/// assert_eq!(rome_hbm::units::bytes_per_ns_to_gbps(32, 1), 32.0);
/// ```
pub fn bytes_per_ns_to_gbps(bytes: u64, ns: Cycle) -> f64 {
    if ns == 0 {
        0.0
    } else {
        bytes as f64 / ns as f64
    }
}

/// Convert gigabytes per second into bytes per nanosecond (identical numeric
/// value; provided for readability at call sites).
pub fn gbps_to_bytes_per_ns(gbps: f64) -> f64 {
    gbps
}

/// A data size, in bytes, with convenience constructors and pretty printing.
///
/// ```
/// use rome_hbm::units::DataSize;
/// let sz = DataSize::from_mib(12);
/// assert_eq!(sz.bytes(), 12 * 1024 * 1024);
/// assert_eq!(sz.to_string(), "12.00 MiB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    /// Create a size from a raw byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize(bytes)
    }

    /// Create a size from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        DataSize(kib * KIB)
    }

    /// Create a size from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        DataSize(mib * MIB)
    }

    /// Create a size from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        DataSize(gib * GIB)
    }

    /// The raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// The size in mebibytes, as a float.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// The size in kibibytes, as a float.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / KIB as f64
    }

    /// Saturating addition of two sizes.
    pub fn saturating_add(self, other: DataSize) -> DataSize {
        DataSize(self.0.saturating_add(other.0))
    }
}

impl std::ops::Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        DataSize(iter.map(|d| d.0).sum())
    }
}

impl From<u64> for DataSize {
    fn from(bytes: u64) -> Self {
        DataSize(bytes)
    }
}

impl std::fmt::Display for DataSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0 as f64;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", b / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", b / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", b / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion_round_trip() {
        assert_eq!(bytes_per_ns_to_gbps(64, 2), 32.0);
        assert_eq!(bytes_per_ns_to_gbps(0, 0), 0.0);
        assert_eq!(gbps_to_bytes_per_ns(32.0), 32.0);
    }

    #[test]
    fn data_size_constructors_and_display() {
        assert_eq!(DataSize::from_kib(4).bytes(), 4096);
        assert_eq!(DataSize::from_mib(1).bytes(), MIB);
        assert_eq!(DataSize::from_gib(2).bytes(), 2 * GIB);
        assert_eq!(DataSize::from_bytes(100).to_string(), "100 B");
        assert_eq!(DataSize::from_kib(4).to_string(), "4.00 KiB");
        assert_eq!(DataSize::from_gib(1).to_string(), "1.00 GiB");
    }

    #[test]
    fn data_size_arithmetic() {
        let a = DataSize::from_kib(1) + DataSize::from_kib(3);
        assert_eq!(a, DataSize::from_kib(4));
        let mut b = DataSize::from_bytes(10);
        b += DataSize::from_bytes(20);
        assert_eq!(b.bytes(), 30);
        let total: DataSize = [DataSize::from_kib(1), DataSize::from_kib(2)]
            .into_iter()
            .sum();
        assert_eq!(total, DataSize::from_kib(3));
        assert_eq!(
            DataSize::from_bytes(u64::MAX).saturating_add(DataSize::from_bytes(1)),
            DataSize::from_bytes(u64::MAX)
        );
    }

    #[test]
    fn data_size_fraction_views() {
        assert_eq!(DataSize::from_mib(3).as_mib(), 3.0);
        assert_eq!(DataSize::from_kib(5).as_kib(), 5.0);
    }
}
