//! DRAM address types.
//!
//! A physical address presented by the host is decomposed by the memory
//! controller's address-mapping function into DRAM coordinates: channel,
//! pseudo channel, stack ID, bank group, bank, row, and column. This module
//! provides the coordinate types; the mapping functions themselves live in
//! the memory-controller crates (`rome-mc`, `rome-core`).

use serde::{Deserialize, Serialize};

/// A host physical address (byte address into the flat memory space backed by
/// the HBM cubes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysicalAddress(pub u64);

impl PhysicalAddress {
    /// Create an address from a raw byte offset.
    pub const fn new(addr: u64) -> Self {
        PhysicalAddress(addr)
    }

    /// The raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Align the address down to `granularity` bytes (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `granularity` is not a power of two.
    pub fn align_down(self, granularity: u64) -> Self {
        debug_assert!(granularity.is_power_of_two());
        PhysicalAddress(self.0 & !(granularity - 1))
    }

    /// Offset the address by `bytes`.
    pub fn offset(self, bytes: u64) -> Self {
        PhysicalAddress(self.0 + bytes)
    }
}

impl From<u64> for PhysicalAddress {
    fn from(v: u64) -> Self {
        PhysicalAddress(v)
    }
}

impl std::fmt::Display for PhysicalAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl std::fmt::LowerHex for PhysicalAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The coordinates identifying one bank within one HBM channel.
///
/// The pseudo channel, stack ID, bank group, and bank index together select a
/// unique bank; the channel index itself is carried separately because a
/// [`crate::channel::HbmChannel`] models exactly one channel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankAddress {
    /// Pseudo channel within the channel (0 or 1 for HBM2+).
    pub pseudo_channel: u8,
    /// Stack ID (rank): which group of DRAM dies in the stack.
    pub stack_id: u8,
    /// Bank group within the pseudo channel / stack ID.
    pub bank_group: u8,
    /// Bank within the bank group.
    pub bank: u8,
}

impl BankAddress {
    /// Create a bank address from its four coordinates.
    pub const fn new(pseudo_channel: u8, stack_id: u8, bank_group: u8, bank: u8) -> Self {
        BankAddress {
            pseudo_channel,
            stack_id,
            bank_group,
            bank,
        }
    }
}

impl std::fmt::Display for BankAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PC{}/SID{}/BG{}/BA{}",
            self.pseudo_channel, self.stack_id, self.bank_group, self.bank
        )
    }
}

/// A fully decomposed DRAM address: channel + bank coordinates + row + column.
///
/// Columns are counted in units of the bank access granularity (`AG_bank`,
/// 32 B per pseudo channel for HBM4), matching the column addresses carried by
/// `RD`/`WR` commands.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DramAddress {
    /// Channel index within the memory system (across all cubes).
    pub channel: u16,
    /// Bank coordinates within the channel.
    pub bank: BankAddress,
    /// Row index within the bank.
    pub row: u32,
    /// Column index within the row, in access-granularity units.
    pub column: u16,
}

impl DramAddress {
    /// Create a DRAM address from all of its coordinates.
    pub const fn new(channel: u16, bank: BankAddress, row: u32, column: u16) -> Self {
        DramAddress {
            channel,
            bank,
            row,
            column,
        }
    }

    /// The address of the same row with the column reset to zero.
    pub fn row_base(mut self) -> Self {
        self.column = 0;
        self
    }
}

impl std::fmt::Display for DramAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CH{}/{}/R{}/C{}",
            self.channel, self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_address_alignment() {
        let a = PhysicalAddress::new(0x1234);
        assert_eq!(a.align_down(0x100).raw(), 0x1200);
        assert_eq!(a.align_down(1).raw(), 0x1234);
        assert_eq!(a.offset(0x10).raw(), 0x1244);
        assert_eq!(PhysicalAddress::from(7u64).raw(), 7);
    }

    #[test]
    fn physical_address_display_and_hex() {
        let a = PhysicalAddress::new(0xdead_beef);
        assert_eq!(a.to_string(), "0x0000deadbeef");
        assert_eq!(format!("{a:x}"), "deadbeef");
    }

    #[test]
    fn bank_address_display() {
        let b = BankAddress::new(1, 2, 3, 0);
        assert_eq!(b.to_string(), "PC1/SID2/BG3/BA0");
    }

    #[test]
    fn dram_address_row_base_resets_column() {
        let a = DramAddress::new(4, BankAddress::new(0, 1, 2, 3), 77, 12);
        let base = a.row_base();
        assert_eq!(base.column, 0);
        assert_eq!(base.row, 77);
        assert_eq!(base.channel, 4);
        assert_eq!(a.to_string(), "CH4/PC0/SID1/BG2/BA3/R77/C12");
    }

    #[test]
    fn ordering_is_lexicographic_over_fields() {
        let lo = DramAddress::new(0, BankAddress::new(0, 0, 0, 0), 0, 0);
        let hi = DramAddress::new(0, BankAddress::new(0, 0, 0, 0), 1, 0);
        assert!(lo < hi);
    }
}
