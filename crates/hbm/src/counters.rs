//! Command and data counters accumulated by the channel model.
//!
//! These counters are the interface between the cycle-accurate simulation and
//! the energy model (`rome-energy`): energy is computed from the number of
//! activations, column accesses, refreshes, and bytes moved.

use serde::{Deserialize, Serialize};

use crate::units::Cycle;

/// Event counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounters {
    /// Number of `ACT` commands issued.
    pub activates: u64,
    /// Number of single-bank `PRE` commands issued.
    pub precharges: u64,
    /// Number of all-bank precharges issued.
    pub precharge_alls: u64,
    /// Number of `RD`/`RDA` commands issued.
    pub reads: u64,
    /// Number of `WR`/`WRA` commands issued.
    pub writes: u64,
    /// Number of per-bank refreshes issued.
    pub refreshes_per_bank: u64,
    /// Number of all-bank refreshes issued.
    pub refreshes_all_bank: u64,
    /// Number of MRS commands issued.
    pub mode_register_sets: u64,
    /// Bytes transferred by read bursts.
    pub bytes_read: u64,
    /// Bytes transferred by write bursts.
    pub bytes_written: u64,
    /// Nanoseconds during which at least one pseudo channel's data bus was
    /// transferring data (per-PC busy time summed over PCs).
    pub data_bus_busy_ns: u64,
    /// Total commands issued on the row C/A pins.
    pub row_ca_commands: u64,
    /// Total commands issued on the column C/A pins.
    pub col_ca_commands: u64,
}

impl ChannelCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        ChannelCounters::default()
    }

    /// Total column commands (reads + writes).
    pub fn column_commands(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Achieved bandwidth in GB/s over an elapsed window of `elapsed` ns
    /// (0.0 if the window is empty).
    pub fn achieved_bandwidth_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_total() as f64 / elapsed as f64
        }
    }

    /// Data-bus utilization of the channel over `elapsed` ns given
    /// `pseudo_channels` buses (1.0 = fully busy).
    pub fn bus_utilization(&self, elapsed: Cycle, pseudo_channels: u32) -> f64 {
        if elapsed == 0 || pseudo_channels == 0 {
            0.0
        } else {
            self.data_bus_busy_ns as f64 / (elapsed as f64 * pseudo_channels as f64)
        }
    }

    /// Merge another counter set into this one (used to aggregate channels).
    pub fn merge(&mut self, other: &ChannelCounters) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.precharge_alls += other.precharge_alls;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes_per_bank += other.refreshes_per_bank;
        self.refreshes_all_bank += other.refreshes_all_bank;
        self.mode_register_sets += other.mode_register_sets;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.data_bus_busy_ns += other.data_bus_busy_ns;
        self.row_ca_commands += other.row_ca_commands;
        self.col_ca_commands += other.col_ca_commands;
    }

    /// Difference `self - baseline`, useful for measuring a window.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `baseline` exceeds `self`
    /// (the baseline must have been captured earlier from the same channel).
    pub fn delta_since(&self, baseline: &ChannelCounters) -> ChannelCounters {
        ChannelCounters {
            activates: self.activates - baseline.activates,
            precharges: self.precharges - baseline.precharges,
            precharge_alls: self.precharge_alls - baseline.precharge_alls,
            reads: self.reads - baseline.reads,
            writes: self.writes - baseline.writes,
            refreshes_per_bank: self.refreshes_per_bank - baseline.refreshes_per_bank,
            refreshes_all_bank: self.refreshes_all_bank - baseline.refreshes_all_bank,
            mode_register_sets: self.mode_register_sets - baseline.mode_register_sets,
            bytes_read: self.bytes_read - baseline.bytes_read,
            bytes_written: self.bytes_written - baseline.bytes_written,
            data_bus_busy_ns: self.data_bus_busy_ns - baseline.data_bus_busy_ns,
            row_ca_commands: self.row_ca_commands - baseline.row_ca_commands,
            col_ca_commands: self.col_ca_commands - baseline.col_ca_commands,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = ChannelCounters {
            reads: 10,
            writes: 5,
            bytes_read: 320,
            bytes_written: 160,
            data_bus_busy_ns: 15,
            ..ChannelCounters::new()
        };
        assert_eq!(c.column_commands(), 15);
        assert_eq!(c.bytes_total(), 480);
        assert_eq!(c.achieved_bandwidth_gbps(10), 48.0);
        assert_eq!(c.achieved_bandwidth_gbps(0), 0.0);
        assert_eq!(c.bus_utilization(15, 2), 0.5);
        assert_eq!(c.bus_utilization(0, 2), 0.0);
        assert_eq!(c.bus_utilization(15, 0), 0.0);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ChannelCounters {
            activates: 1,
            reads: 2,
            bytes_read: 64,
            ..Default::default()
        };
        let b = ChannelCounters {
            activates: 3,
            reads: 4,
            writes: 1,
            bytes_read: 128,
            bytes_written: 32,
            row_ca_commands: 7,
            col_ca_commands: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, 4);
        assert_eq!(a.reads, 6);
        assert_eq!(a.writes, 1);
        assert_eq!(a.bytes_read, 192);
        assert_eq!(a.bytes_written, 32);
        assert_eq!(a.row_ca_commands, 7);
        assert_eq!(a.col_ca_commands, 5);
    }

    #[test]
    fn delta_since_subtracts_baseline() {
        let base = ChannelCounters {
            reads: 5,
            bytes_read: 160,
            ..Default::default()
        };
        let now = ChannelCounters {
            reads: 9,
            bytes_read: 288,
            ..Default::default()
        };
        let d = now.delta_since(&base);
        assert_eq!(d.reads, 4);
        assert_eq!(d.bytes_read, 128);
        assert_eq!(d.writes, 0);
    }
}
