//! DRAM organization: how a cube is divided into channels, pseudo channels,
//! stack IDs, bank groups, banks, rows, and columns.

use serde::{Deserialize, Serialize};

use crate::error::HbmError;
use crate::units::DataSize;

/// The organization of one HBM channel (and, by extension, a cube).
///
/// The defaults correspond to the HBM4 configuration of the paper's Table V:
/// 32 channels per cube, 2 pseudo channels per channel, 4 stack IDs,
/// 4 bank groups × 4 banks per (PC, SID), 1 KB rows, and a 32 B access
/// granularity per pseudo channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Organization {
    /// Channels per cube.
    pub channels_per_cube: u16,
    /// Pseudo channels per channel.
    pub pseudo_channels: u8,
    /// Stack IDs (ranks) per channel.
    pub stack_ids: u8,
    /// Bank groups per (pseudo channel, stack ID).
    pub bank_groups: u8,
    /// Banks per bank group.
    pub banks_per_group: u8,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row size (row-buffer size) per bank in bytes.
    pub row_bytes: u32,
    /// Access granularity of one column command, per pseudo channel, in bytes.
    pub access_granularity: u32,
    /// Data pins (DQ) per pseudo channel.
    pub dq_per_pseudo_channel: u16,
    /// Per-pin data rate in Gb/s.
    pub data_rate_gbps: f64,
}

impl Organization {
    /// The HBM4 organization used as the paper's baseline (Table V).
    pub fn hbm4() -> Self {
        Organization {
            channels_per_cube: 32,
            pseudo_channels: 2,
            stack_ids: 4,
            bank_groups: 4,
            banks_per_group: 4,
            rows_per_bank: 8192,
            row_bytes: 1024,
            access_granularity: 32,
            dq_per_pseudo_channel: 32,
            data_rate_gbps: 8.0,
        }
    }

    /// A small organization (fewer banks and rows) for fast unit tests.
    pub fn tiny() -> Self {
        Organization {
            channels_per_cube: 2,
            pseudo_channels: 2,
            stack_ids: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 64,
            row_bytes: 1024,
            access_granularity: 32,
            dq_per_pseudo_channel: 32,
            data_rate_gbps: 8.0,
        }
    }

    /// Validate internal consistency of the organization.
    ///
    /// # Errors
    ///
    /// Returns [`HbmError::InvalidConfig`] if any dimension is zero, the row
    /// size is not a multiple of the access granularity, or the access
    /// granularity does not match the DQ width at a burst length of 8.
    pub fn validate(&self) -> Result<(), HbmError> {
        let nonzero: [(&str, u64); 8] = [
            ("channels_per_cube", self.channels_per_cube as u64),
            ("pseudo_channels", self.pseudo_channels as u64),
            ("stack_ids", self.stack_ids as u64),
            ("bank_groups", self.bank_groups as u64),
            ("banks_per_group", self.banks_per_group as u64),
            ("rows_per_bank", self.rows_per_bank as u64),
            ("row_bytes", self.row_bytes as u64),
            ("access_granularity", self.access_granularity as u64),
        ];
        for (name, v) in nonzero {
            if v == 0 {
                return Err(HbmError::InvalidConfig {
                    reason: format!("{name} must be non-zero"),
                });
            }
        }
        if !self.row_bytes.is_multiple_of(self.access_granularity) {
            return Err(HbmError::InvalidConfig {
                reason: format!(
                    "row_bytes ({}) must be a multiple of access_granularity ({})",
                    self.row_bytes, self.access_granularity
                ),
            });
        }
        Ok(())
    }

    /// Banks per pseudo channel (across all stack IDs).
    pub fn banks_per_pseudo_channel(&self) -> u32 {
        self.stack_ids as u32 * self.bank_groups as u32 * self.banks_per_group as u32
    }

    /// Banks per channel (across both pseudo channels and all stack IDs).
    pub fn banks_per_channel(&self) -> u32 {
        self.pseudo_channels as u32 * self.banks_per_pseudo_channel()
    }

    /// Columns (bursts) per row at the configured access granularity.
    pub fn columns_per_row(&self) -> u32 {
        self.row_bytes / self.access_granularity
    }

    /// Capacity of a single bank in bytes.
    pub fn bank_capacity(&self) -> DataSize {
        DataSize::from_bytes(self.rows_per_bank as u64 * self.row_bytes as u64)
    }

    /// Capacity of a single channel in bytes.
    pub fn channel_capacity(&self) -> DataSize {
        DataSize::from_bytes(self.bank_capacity().bytes() * self.banks_per_channel() as u64)
    }

    /// Capacity of the whole cube in bytes.
    pub fn cube_capacity(&self) -> DataSize {
        DataSize::from_bytes(self.channel_capacity().bytes() * self.channels_per_cube as u64)
    }

    /// Peak bandwidth of one pseudo channel in GB/s (bytes per ns).
    pub fn pseudo_channel_bandwidth_gbps(&self) -> f64 {
        self.dq_per_pseudo_channel as f64 * self.data_rate_gbps / 8.0
    }

    /// Peak bandwidth of one channel in GB/s.
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        self.pseudo_channel_bandwidth_gbps() * self.pseudo_channels as f64
    }

    /// Peak bandwidth of the whole cube in GB/s.
    pub fn cube_bandwidth_gbps(&self) -> f64 {
        self.channel_bandwidth_gbps() * self.channels_per_cube as f64
    }

    /// Duration of one burst (one column command's data transfer) on a pseudo
    /// channel, in nanoseconds.
    ///
    /// For HBM4 (32 B burst at 32 GB/s per PC) this is exactly 1 ns.
    pub fn burst_ns(&self) -> u64 {
        let bw = self.pseudo_channel_bandwidth_gbps();
        let ns = self.access_granularity as f64 / bw;
        ns.round().max(1.0) as u64
    }
}

impl Default for Organization {
    fn default() -> Self {
        Organization::hbm4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_organization_matches_table_v() {
        let org = Organization::hbm4();
        org.validate().unwrap();
        // Table V: 32 channels/cube, 128 banks/channel, 1 KB rows.
        assert_eq!(org.channels_per_cube, 32);
        assert_eq!(org.banks_per_channel(), 128);
        assert_eq!(org.row_bytes as u64, crate::units::KIB);
        // 2 TB/s per cube at 8 Gb/s with 64 B channels.
        assert_eq!(org.channel_bandwidth_gbps(), 64.0);
        assert_eq!(org.cube_bandwidth_gbps(), 2048.0);
        // 32 GB cube capacity.
        assert_eq!(org.cube_capacity().bytes(), 32 * 1024 * 1024 * 1024);
        assert_eq!(org.burst_ns(), 1);
        assert_eq!(org.columns_per_row(), 32);
    }

    #[test]
    fn tiny_organization_is_valid() {
        let org = Organization::tiny();
        org.validate().unwrap();
        assert_eq!(org.banks_per_channel(), 8);
        assert_eq!(org.banks_per_pseudo_channel(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut org = Organization::hbm4();
        org.bank_groups = 0;
        assert!(org.validate().is_err());

        let mut org = Organization::hbm4();
        org.row_bytes = 1000; // not a multiple of 32
        assert!(org.validate().is_err());
    }

    #[test]
    fn default_is_hbm4() {
        assert_eq!(Organization::default(), Organization::hbm4());
    }
}
