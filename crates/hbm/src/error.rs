//! Error types for the DRAM device model.

use crate::command::DramCommand;
use crate::units::Cycle;

/// Errors returned by the HBM device model.
///
/// All variants carry enough context to diagnose which command was rejected
/// and why, so a memory-controller implementation can log and recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbmError {
    /// The command violates a DRAM timing constraint: it may not be issued
    /// before `earliest`.
    TimingViolation {
        /// The rejected command.
        command: DramCommand,
        /// The cycle at which the command was attempted.
        at: Cycle,
        /// The earliest cycle at which the command would be legal.
        earliest: Cycle,
    },
    /// The command is illegal in the bank's current state (e.g. `RD` to a
    /// precharged bank, `ACT` to a bank that already has an open row).
    IllegalState {
        /// The rejected command.
        command: DramCommand,
        /// Human-readable description of the state conflict.
        reason: &'static str,
    },
    /// The command addresses a bank, bank group, pseudo channel, stack ID,
    /// row, or column outside the configured organization.
    AddressOutOfRange {
        /// Description of which coordinate was out of range.
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The exclusive upper bound implied by the organization.
        limit: u64,
    },
    /// A configuration value is inconsistent (e.g. zero banks per bank group).
    InvalidConfig {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl std::fmt::Display for HbmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbmError::TimingViolation { command, at, earliest } => write!(
                f,
                "timing violation: {command:?} issued at {at} ns but earliest legal cycle is {earliest} ns"
            ),
            HbmError::IllegalState { command, reason } => {
                write!(f, "illegal command for bank state: {command:?} ({reason})")
            }
            HbmError::AddressOutOfRange { what, value, limit } => {
                write!(f, "{what} {value} out of range (limit {limit})")
            }
            HbmError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for HbmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandTarget;

    #[test]
    fn display_is_nonempty_and_descriptive() {
        let t = CommandTarget::bank(0, 0, 0, 0);
        let e = HbmError::TimingViolation {
            command: DramCommand::Act { target: t, row: 1 },
            at: 5,
            earliest: 9,
        };
        let s = e.to_string();
        assert!(s.contains("timing violation"));
        assert!(s.contains("5 ns"));
        assert!(s.contains("9 ns"));

        let e = HbmError::AddressOutOfRange {
            what: "row",
            value: 10_000,
            limit: 8192,
        };
        assert!(e.to_string().contains("row"));

        let e = HbmError::InvalidConfig {
            reason: "zero banks".into(),
        };
        assert!(e.to_string().contains("zero banks"));

        let e = HbmError::IllegalState {
            command: DramCommand::Pre { target: t },
            reason: "bank idle",
        };
        assert!(e.to_string().contains("bank idle"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static + std::error::Error>() {}
        assert_traits::<HbmError>();
    }
}
