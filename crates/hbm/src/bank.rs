//! Per-bank state: the bank finite-state machine and row-buffer contents.
//!
//! A conventional HBM bank can be in one of seven states (paper §II-D):
//! Idle, Activating, Active, Reading, Writing, Precharging, and Refreshing.
//! The transitional states (Activating, Reading, Writing, Precharging,
//! Refreshing) are derived from the time the triggering command was issued
//! and the relevant timing parameter; the persistent facts tracked here are
//! the open row (if any) and the time until which the bank is busy with a
//! refresh.

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;
use crate::units::Cycle;

/// The observable state of a bank at a particular cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankState {
    /// All rows closed; the bank can accept an `ACT` or `REF`.
    Idle,
    /// An `ACT` is in flight (before `tRCD` has elapsed).
    Activating,
    /// A row is open and column commands may be issued.
    Active,
    /// A read burst is in flight.
    Reading,
    /// A write burst is in flight.
    Writing,
    /// A `PRE` is in flight (before `tRP` has elapsed).
    Precharging,
    /// A refresh is in progress.
    Refreshing,
}

impl std::fmt::Display for BankState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BankState::Idle => "Idle",
            BankState::Activating => "Activating",
            BankState::Active => "Active",
            BankState::Reading => "Reading",
            BankState::Writing => "Writing",
            BankState::Precharging => "Precharging",
            BankState::Refreshing => "Refreshing",
        };
        f.write_str(s)
    }
}

impl BankState {
    /// The number of states a conventional MC bank FSM must distinguish
    /// (Table IV, "# of bank states" = 7).
    pub const CONVENTIONAL_COUNT: usize = 7;
}

/// Sentinel stored in [`Bank::open_row`] when no row is open. Row addresses
/// are bounded by `Organization::rows_per_bank` (far below `u32::MAX`), so the
/// sentinel can never collide with a real row.
const NO_ROW: u32 = u32::MAX;

/// One DRAM bank: logical row-buffer state plus the timestamps needed to
/// derive the transitional FSM states.
///
/// Every field is plain-old-data (the open row is a `u32` with a `NO_ROW`
/// sentinel rather than an `Option`), so a `Vec<Bank>` is a flat POD slab:
/// snapshotting or forking a channel's bank state is a single memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    /// The currently open row, or [`NO_ROW`].
    open_row: u32,
    /// When the most recent `ACT` finishes opening its row (`tRCD` after it
    /// was issued; valid while a row is open).
    act_ready_at: Cycle,
    /// When the most recent column command's data transfer finishes.
    column_busy_until: Cycle,
    /// Whether the most recent column command was a write.
    last_column_was_write: bool,
    /// When the most recent `PRE` completes (`tRP` after it was issued).
    precharge_done_at: Cycle,
    /// When the in-progress refresh (if any) completes.
    refresh_done_at: Cycle,
    /// Number of activations this bank has seen (for energy accounting).
    activations: u64,
    /// The bank's event calendar: the pending transition timestamps, sorted
    /// ascending, rebuilt at each mutation point (`activate`,
    /// `column_access`, `precharge`, `refresh`). Queries walk past expired
    /// entries and return the first future one, so
    /// [`Bank::next_event_at`] does no timing arithmetic and no
    /// filter-and-minimize pass — mutations are far rarer than queries in an
    /// event-driven run.
    transitions: [Cycle; 4],
}

impl Default for Bank {
    fn default() -> Self {
        Bank {
            open_row: NO_ROW,
            act_ready_at: 0,
            column_busy_until: 0,
            last_column_was_write: false,
            precharge_done_at: 0,
            refresh_done_at: 0,
            activations: 0,
            transitions: [0; 4],
        }
    }
}

impl Bank {
    /// A bank in the idle (precharged) state.
    pub fn new() -> Self {
        Bank::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        (self.open_row != NO_ROW).then_some(self.open_row)
    }

    /// Whether the bank currently has an open row.
    pub fn is_active(&self) -> bool {
        self.open_row != NO_ROW
    }

    /// Whether the bank is refreshing at `now`.
    pub fn is_refreshing(&self, now: Cycle) -> bool {
        now < self.refresh_done_at
    }

    /// Total activations recorded by this bank.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// The cycle the in-progress refresh completes (0 if none has occurred).
    pub fn refresh_done_at(&self) -> Cycle {
        self.refresh_done_at
    }

    /// Record an `ACT` of `row` at cycle `now` under `timing`.
    pub fn activate(&mut self, row: u32, now: Cycle, timing: &TimingParams) {
        debug_assert_ne!(row, NO_ROW, "row address collides with the NO_ROW sentinel");
        self.open_row = row;
        self.act_ready_at = now + Cycle::from(timing.t_rcd_rd.min(timing.t_rcd_wr));
        self.activations += 1;
        self.rebuild_transitions();
    }

    /// Record a `PRE` issued at cycle `now` under `timing`.
    pub fn precharge(&mut self, now: Cycle, timing: &TimingParams) {
        self.open_row = NO_ROW;
        self.precharge_done_at = now + Cycle::from(timing.t_rp);
        self.rebuild_transitions();
    }

    /// Record a column command issued at cycle `now`; `data_end` is when its
    /// data transfer completes on the bus.
    pub fn column_access(&mut self, is_write: bool, data_end: Cycle) {
        self.column_busy_until = self.column_busy_until.max(data_end);
        self.last_column_was_write = is_write;
        self.rebuild_transitions();
    }

    /// Record a refresh issued at `now` lasting `duration` nanoseconds.
    /// Refresh implicitly closes the row buffer.
    pub fn refresh(&mut self, now: Cycle, duration: Cycle) {
        self.open_row = NO_ROW;
        self.refresh_done_at = now + duration;
        self.rebuild_transitions();
    }

    /// Rebuild the sorted transition calendar from the timestamp fields.
    /// Called at every mutation point so queries never recompute it.
    fn rebuild_transitions(&mut self) {
        let mut t = [
            self.refresh_done_at,
            if self.open_row != NO_ROW {
                self.act_ready_at
            } else {
                0
            },
            self.column_busy_until,
            self.precharge_done_at,
        ];
        t.sort_unstable();
        self.transitions = t;
    }

    /// The next cycle strictly after `now` at which the bank's observable
    /// FSM state changes without any further command: the end of an
    /// in-flight refresh, activation, data burst, or precharge. `None` when
    /// the bank is in a stable state (Idle or Active) and only a new command
    /// can change it.
    ///
    /// O(1): walks the cached sorted calendar maintained by the mutation
    /// points and returns the first entry past `now`.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        self.transitions.iter().find(|&&t| t > now).copied()
    }

    /// The observable FSM state at cycle `now`.
    pub fn state_at(&self, now: Cycle) -> BankState {
        if now < self.refresh_done_at {
            return BankState::Refreshing;
        }
        if self.open_row != NO_ROW {
            if now < self.act_ready_at {
                BankState::Activating
            } else if now < self.column_busy_until {
                if self.last_column_was_write {
                    BankState::Writing
                } else {
                    BankState::Reading
                }
            } else {
                BankState::Active
            }
        } else if now < self.precharge_done_at {
            BankState::Precharging
        } else {
            BankState::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::hbm4()
    }

    #[test]
    fn new_bank_is_idle_with_no_open_row() {
        let b = Bank::new();
        assert_eq!(b.state_at(0), BankState::Idle);
        assert_eq!(b.open_row(), None);
        assert!(!b.is_active());
        assert_eq!(b.activations(), 0);
    }

    #[test]
    fn activation_walks_through_activating_then_active() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(42, 100, &t);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.state_at(100), BankState::Activating);
        assert_eq!(b.state_at(100 + t.t_rcd_rd as u64), BankState::Active);
        assert_eq!(b.activations(), 1);
    }

    #[test]
    fn column_access_shows_reading_or_writing() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(1, 0, &t);
        let active_at = t.t_rcd_rd as u64;
        b.column_access(false, active_at + 20);
        assert_eq!(b.state_at(active_at + 5), BankState::Reading);
        b.column_access(true, active_at + 40);
        assert_eq!(b.state_at(active_at + 25), BankState::Writing);
        assert_eq!(b.state_at(active_at + 41), BankState::Active);
    }

    #[test]
    fn precharge_closes_row_and_walks_through_precharging() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(7, 0, &t);
        b.precharge(50, &t);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.state_at(50), BankState::Precharging);
        assert_eq!(b.state_at(50 + t.t_rp as u64), BankState::Idle);
    }

    #[test]
    fn refresh_blocks_bank_and_closes_row() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(7, 0, &t);
        b.refresh(100, 280);
        assert!(b.is_refreshing(200));
        assert_eq!(b.state_at(200), BankState::Refreshing);
        assert_eq!(b.state_at(380), BankState::Idle);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.refresh_done_at(), 380);
    }

    #[test]
    fn next_event_at_tracks_transitional_states() {
        let t = timing();
        let mut b = Bank::new();
        // Stable Idle: no self-transitions pending.
        assert_eq!(b.next_event_at(0), None);
        // Activating -> Active at tRCD.
        b.activate(3, 100, &t);
        assert_eq!(
            b.next_event_at(100),
            Some(100 + t.t_rcd_rd.min(t.t_rcd_wr) as u64)
        );
        // Reading -> Active when the burst ends.
        b.column_access(false, 130);
        assert_eq!(b.next_event_at(120), Some(130));
        // Precharging -> Idle at tRP.
        b.precharge(200, &t);
        assert_eq!(b.next_event_at(200), Some(200 + t.t_rp as u64));
        assert_eq!(b.next_event_at(200 + t.t_rp as u64), None);
        // Refreshing -> Idle when the refresh completes.
        b.refresh(300, 280);
        assert_eq!(b.next_event_at(300), Some(580));
    }

    #[test]
    fn cached_calendar_matches_a_from_scratch_recompute() {
        // Oracle: the calendar must always equal the filter-and-minimize
        // pass it replaced, across a scripted mutation sequence.
        let t = timing();
        let mut b = Bank::new();
        let oracle = |b: &Bank, now: Cycle| {
            [
                b.refresh_done_at(),
                if b.is_active() { b.act_ready_at } else { 0 },
                b.column_busy_until,
                b.precharge_done_at,
            ]
            .into_iter()
            .filter(|&x| x > now)
            .min()
        };
        let check = |b: &Bank| {
            for now in [0u64, 50, 100, 116, 130, 200, 216, 500, 1000] {
                assert_eq!(b.next_event_at(now), oracle(b, now), "at {now}");
            }
        };
        check(&b);
        b.activate(1, 100, &t);
        check(&b);
        b.column_access(false, 140);
        check(&b);
        b.precharge(150, &t);
        check(&b);
        b.refresh(200, 280);
        check(&b);
    }

    #[test]
    fn conventional_state_count_is_seven() {
        assert_eq!(BankState::CONVENTIONAL_COUNT, 7);
        assert_eq!(BankState::Reading.to_string(), "Reading");
    }
}
