//! DRAM timing-constraint tracking.
//!
//! The engine follows the standard "earliest legal issue time" formulation
//! used by cycle-accurate DRAM simulators: every command issued at time `t`
//! pushes forward the earliest time at which related commands may be issued
//! at four scopes — the **bank**, the **bank group**, the **rank** (one
//! pseudo channel × stack ID, which shares an ACT/FAW budget), and the
//! **pseudo channel** (which shares the data bus across stack IDs). Checking
//! a command is then a handful of array lookups; issuing it is a handful of
//! `max` updates. This keeps the hot path allocation-free.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::address::BankAddress;
use crate::command::CommandKind;
use crate::organization::Organization;
use crate::timing::TimingParams;
use crate::units::Cycle;

/// Earliest-issue table for one scope node (bank, bank group, rank, or PC).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct ScopeNode {
    earliest: [Cycle; CommandKind::COUNT],
}

impl ScopeNode {
    fn earliest(&self, kind: CommandKind) -> Cycle {
        self.earliest[kind.index()]
    }

    fn push(&mut self, kind: CommandKind, at_least: Cycle) {
        let slot = &mut self.earliest[kind.index()];
        if *slot < at_least {
            *slot = at_least;
        }
    }
}

/// Per-rank tracker for the four-activate window (`tFAW`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct FawWindow {
    recent_acts: VecDeque<Cycle>,
}

impl FawWindow {
    /// Earliest time a new ACT may issue given the last four activations.
    fn earliest_act(&self, t_faw: u32) -> Cycle {
        if self.recent_acts.len() < 4 {
            0
        } else {
            self.recent_acts[self.recent_acts.len() - 4] + Cycle::from(t_faw)
        }
    }

    fn record(&mut self, now: Cycle) {
        self.recent_acts.push_back(now);
        while self.recent_acts.len() > 4 {
            self.recent_acts.pop_front();
        }
    }
}

/// Identity of the last column command seen on a pseudo channel, used for the
/// cross-stack-ID spacing `tCCDR`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct LastColumn {
    valid: bool,
    at: Cycle,
    stack_id: u8,
}

/// The full timing-constraint state of one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintEngine {
    org: Organization,
    timing: TimingParams,
    banks: Vec<ScopeNode>,
    bank_groups: Vec<ScopeNode>,
    ranks: Vec<ScopeNode>,
    pseudo_channels: Vec<ScopeNode>,
    faw: Vec<FawWindow>,
    last_column: Vec<LastColumn>,
}

impl ConstraintEngine {
    /// Create the constraint state for one channel of `org` under `timing`.
    pub fn new(org: Organization, timing: TimingParams) -> Self {
        let banks = org.banks_per_channel() as usize;
        let bank_groups =
            (org.pseudo_channels as usize) * (org.stack_ids as usize) * (org.bank_groups as usize);
        let ranks = (org.pseudo_channels as usize) * (org.stack_ids as usize);
        let pcs = org.pseudo_channels as usize;
        ConstraintEngine {
            org,
            timing,
            banks: vec![ScopeNode::default(); banks],
            bank_groups: vec![ScopeNode::default(); bank_groups],
            ranks: vec![ScopeNode::default(); ranks],
            pseudo_channels: vec![ScopeNode::default(); pcs],
            faw: vec![FawWindow::default(); ranks],
            last_column: vec![LastColumn::default(); pcs],
        }
    }

    /// Flat index of a bank within the channel.
    pub fn bank_index(&self, b: BankAddress) -> usize {
        let per_pc = self.org.banks_per_pseudo_channel() as usize;
        let per_sid = (self.org.bank_groups * self.org.banks_per_group) as usize;
        b.pseudo_channel as usize * per_pc
            + b.stack_id as usize * per_sid
            + b.bank_group as usize * self.org.banks_per_group as usize
            + b.bank as usize
    }

    /// Flat index of a bank group within the channel.
    pub fn bank_group_index(&self, b: BankAddress) -> usize {
        (b.pseudo_channel as usize * self.org.stack_ids as usize + b.stack_id as usize)
            * self.org.bank_groups as usize
            + b.bank_group as usize
    }

    /// Flat index of a rank (pseudo channel × stack ID) within the channel.
    pub fn rank_index(&self, b: BankAddress) -> usize {
        b.pseudo_channel as usize * self.org.stack_ids as usize + b.stack_id as usize
    }

    /// The earliest cycle at which a command of `kind` may be issued to bank
    /// `addr`, considering every scope it touches. `now` only provides the
    /// lower bound of the answer.
    pub fn earliest(&self, kind: CommandKind, addr: BankAddress, now: Cycle) -> Cycle {
        let t = &self.timing;
        let bank = &self.banks[self.bank_index(addr)];
        let bg = &self.bank_groups[self.bank_group_index(addr)];
        let rank = &self.ranks[self.rank_index(addr)];
        let pc = &self.pseudo_channels[addr.pseudo_channel as usize];

        let mut earliest = now
            .max(bank.earliest(kind))
            .max(bg.earliest(kind))
            .max(rank.earliest(kind))
            .max(pc.earliest(kind));

        match kind {
            CommandKind::Act => {
                earliest = earliest.max(self.faw[self.rank_index(addr)].earliest_act(t.t_faw));
            }
            CommandKind::Rd | CommandKind::Wr => {
                let last = self.last_column[addr.pseudo_channel as usize];
                if last.valid && last.stack_id != addr.stack_id {
                    earliest = earliest.max(last.at + Cycle::from(t.t_ccd_r));
                }
            }
            _ => {}
        }
        earliest
    }

    /// Record the issue of a command of `kind` to `addr` at cycle `now`,
    /// pushing forward the earliest-issue times of every affected scope.
    ///
    /// `burst_ns` is the data-burst duration of one column command.
    pub fn record(&mut self, kind: CommandKind, addr: BankAddress, now: Cycle, burst_ns: u32) {
        let t = self.timing;
        let burst = Cycle::from(burst_ns);
        let bank_i = self.bank_index(addr);
        let bg_i = self.bank_group_index(addr);
        let rank_i = self.rank_index(addr);
        let pc_i = addr.pseudo_channel as usize;

        match kind {
            CommandKind::Act => {
                let bank = &mut self.banks[bank_i];
                bank.push(CommandKind::Rd, now + Cycle::from(t.t_rcd_rd));
                bank.push(CommandKind::Wr, now + Cycle::from(t.t_rcd_wr));
                bank.push(CommandKind::Pre, now + Cycle::from(t.t_ras));
                bank.push(CommandKind::PreAll, now + Cycle::from(t.t_ras));
                bank.push(CommandKind::Act, now + Cycle::from(t.t_rc));
                bank.push(CommandKind::RefPb, now + Cycle::from(t.t_ras + t.t_rp));
                bank.push(CommandKind::RefAb, now + Cycle::from(t.t_ras + t.t_rp));

                self.bank_groups[bg_i].push(CommandKind::Act, now + Cycle::from(t.t_rrd_l));
                self.ranks[rank_i].push(CommandKind::Act, now + Cycle::from(t.t_rrd_s));
                self.faw[rank_i].record(now);
            }
            CommandKind::Pre => {
                let bank = &mut self.banks[bank_i];
                bank.push(CommandKind::Act, now + Cycle::from(t.t_rp));
                bank.push(CommandKind::RefPb, now + Cycle::from(t.t_rp));
                bank.push(CommandKind::RefAb, now + Cycle::from(t.t_rp));
            }
            CommandKind::PreAll => {
                // Applies tRP to every bank of the rank.
                let per_sid = (self.org.bank_groups * self.org.banks_per_group) as usize;
                let base =
                    self.bank_index(BankAddress::new(addr.pseudo_channel, addr.stack_id, 0, 0));
                for i in 0..per_sid {
                    let bank = &mut self.banks[base + i];
                    bank.push(CommandKind::Act, now + Cycle::from(t.t_rp));
                    bank.push(CommandKind::RefPb, now + Cycle::from(t.t_rp));
                    bank.push(CommandKind::RefAb, now + Cycle::from(t.t_rp));
                }
            }
            CommandKind::Rd => {
                let bank = &mut self.banks[bank_i];
                bank.push(CommandKind::Pre, now + Cycle::from(t.t_rtp));
                bank.push(CommandKind::PreAll, now + Cycle::from(t.t_rtp));

                let bg = &mut self.bank_groups[bg_i];
                bg.push(CommandKind::Rd, now + Cycle::from(t.t_ccd_l));
                bg.push(CommandKind::Wr, now + Cycle::from(t.t_ccd_l));

                let rank = &mut self.ranks[rank_i];
                rank.push(CommandKind::Rd, now + Cycle::from(t.t_ccd_s));
                rank.push(CommandKind::Wr, now + Cycle::from(t.t_ccd_s));

                let pc = &mut self.pseudo_channels[pc_i];
                pc.push(CommandKind::Rd, now + Cycle::from(t.t_ccd_s));
                pc.push(CommandKind::Wr, now + Cycle::from(t.t_rtw));
                self.last_column[pc_i] = LastColumn {
                    valid: true,
                    at: now,
                    stack_id: addr.stack_id,
                };
            }
            CommandKind::Wr => {
                let bank = &mut self.banks[bank_i];
                bank.push(
                    CommandKind::Pre,
                    now + Cycle::from(t.write_to_precharge(burst_ns)),
                );
                bank.push(
                    CommandKind::PreAll,
                    now + Cycle::from(t.write_to_precharge(burst_ns)),
                );

                let bg = &mut self.bank_groups[bg_i];
                bg.push(CommandKind::Wr, now + Cycle::from(t.t_ccd_l));
                bg.push(
                    CommandKind::Rd,
                    now + Cycle::from(t.write_to_read(true, burst_ns)),
                );

                let rank = &mut self.ranks[rank_i];
                rank.push(CommandKind::Wr, now + Cycle::from(t.t_ccd_s));
                rank.push(
                    CommandKind::Rd,
                    now + Cycle::from(t.write_to_read(false, burst_ns)),
                );

                let pc = &mut self.pseudo_channels[pc_i];
                pc.push(CommandKind::Wr, now + Cycle::from(t.t_ccd_s));
                pc.push(
                    CommandKind::Rd,
                    now + Cycle::from(t.write_to_read(false, burst_ns)),
                );
                self.last_column[pc_i] = LastColumn {
                    valid: true,
                    at: now,
                    stack_id: addr.stack_id,
                };
                let _ = burst;
            }
            CommandKind::RefPb => {
                let bank = &mut self.banks[bank_i];
                bank.push(CommandKind::Act, now + Cycle::from(t.t_rfc_pb));
                bank.push(CommandKind::RefPb, now + Cycle::from(t.t_rfc_pb));
                let rank = &mut self.ranks[rank_i];
                rank.push(CommandKind::RefPb, now + Cycle::from(t.t_rrefd));
            }
            CommandKind::RefAb => {
                let per_sid = (self.org.bank_groups * self.org.banks_per_group) as usize;
                let base =
                    self.bank_index(BankAddress::new(addr.pseudo_channel, addr.stack_id, 0, 0));
                for i in 0..per_sid {
                    let bank = &mut self.banks[base + i];
                    bank.push(CommandKind::Act, now + Cycle::from(t.t_rfc_ab));
                    bank.push(CommandKind::RefPb, now + Cycle::from(t.t_rfc_ab));
                    bank.push(CommandKind::RefAb, now + Cycle::from(t.t_rfc_ab));
                }
                let rank = &mut self.ranks[rank_i];
                rank.push(CommandKind::RefAb, now + Cycle::from(t.t_rfc_ab));
            }
            CommandKind::Mrs => {
                // MRS occupies the command bus only; the simple model applies
                // a one-slot spacing on the rank for subsequent MRS commands.
                self.ranks[rank_i].push(CommandKind::Mrs, now + Cycle::from(t.t_ccd_l));
            }
        }
    }

    /// Lower bound on the earliest issue of `kind` anywhere on pseudo
    /// channel `pc`, from the pseudo-channel scope alone. Much cheaper than
    /// [`ConstraintEngine::earliest`]; schedulers use it to skip whole
    /// pseudo channels whose shared bus cannot accept the command yet.
    pub fn pseudo_channel_bound(&self, kind: CommandKind, pc: u8) -> Cycle {
        self.pseudo_channels[pc as usize].earliest(kind)
    }

    /// Lower bound on the earliest ACT to any bank of the rank holding
    /// `addr`: the rank-scope tRRD window combined with the four-activate
    /// window. Lets schedulers disqualify a whole rank's worth of pending
    /// activations with one comparison.
    pub fn rank_act_bound(&self, addr: BankAddress) -> Cycle {
        let rank = self.rank_index(addr);
        self.ranks[rank]
            .earliest(CommandKind::Act)
            .max(self.faw[rank].earliest_act(self.timing.t_faw))
    }

    /// The organization this engine was built for.
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// The timing parameters this engine enforces.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ConstraintEngine {
        ConstraintEngine::new(Organization::hbm4(), TimingParams::hbm4())
    }

    fn bank(pc: u8, sid: u8, bg: u8, ba: u8) -> BankAddress {
        BankAddress::new(pc, sid, bg, ba)
    }

    #[test]
    fn bank_indices_are_unique_and_dense() {
        let e = engine();
        let org = Organization::hbm4();
        let mut seen = vec![false; org.banks_per_channel() as usize];
        for pc in 0..org.pseudo_channels {
            for sid in 0..org.stack_ids {
                for bg in 0..org.bank_groups {
                    for ba in 0..org.banks_per_group {
                        let i = e.bank_index(bank(pc, sid, bg, ba));
                        assert!(!seen[i], "duplicate index {i}");
                        seen[i] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn act_to_rd_respects_trcd() {
        let mut e = engine();
        let b = bank(0, 0, 0, 0);
        assert_eq!(e.earliest(CommandKind::Act, b, 0), 0);
        e.record(CommandKind::Act, b, 0, 1);
        assert_eq!(e.earliest(CommandKind::Rd, b, 0), 16);
        assert_eq!(e.earliest(CommandKind::Pre, b, 0), 29);
        assert_eq!(e.earliest(CommandKind::Act, b, 0), 45);
    }

    #[test]
    fn act_act_spacing_same_vs_different_bank_group() {
        let mut e = engine();
        e.record(CommandKind::Act, bank(0, 0, 0, 0), 0, 1);
        // Same bank group, different bank: tRRD_L = 4.
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 0, 0, 1), 0), 4);
        // Different bank group: tRRD_S = 2.
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 0, 1, 0), 0), 2);
        // Different rank (stack ID): unconstrained by tRRD.
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 1, 0, 0), 0), 0);
        // Different pseudo channel: unconstrained.
        assert_eq!(e.earliest(CommandKind::Act, bank(1, 0, 0, 0), 0), 0);
    }

    #[test]
    fn faw_limits_fifth_activation() {
        let mut e = engine();
        let t_faw = 12;
        // Four ACTs to different bank groups at the tRRD_S rate.
        for (i, bg) in [0u8, 1, 2, 3].iter().enumerate() {
            let at = (i as u64) * 2;
            let b = bank(0, 0, *bg, 0);
            assert!(e.earliest(CommandKind::Act, b, at) <= at);
            e.record(CommandKind::Act, b, at, 1);
        }
        // Fifth ACT must wait for the FAW window opened at t=0.
        let fifth = bank(0, 0, 0, 1);
        assert_eq!(e.earliest(CommandKind::Act, fifth, 8), t_faw);
    }

    #[test]
    fn column_command_spacing_ccd_long_short_and_cross_rank() {
        let mut e = engine();
        e.record(CommandKind::Rd, bank(0, 0, 0, 0), 100, 1);
        // Same bank group: tCCD_L = 2.
        assert_eq!(e.earliest(CommandKind::Rd, bank(0, 0, 0, 1), 100), 102);
        // Different bank group: tCCD_S = 1.
        assert_eq!(e.earliest(CommandKind::Rd, bank(0, 0, 1, 0), 100), 101);
        // Different stack ID: tCCD_R = 2.
        assert_eq!(e.earliest(CommandKind::Rd, bank(0, 1, 1, 0), 100), 102);
        // Other pseudo channel: independent bus.
        assert_eq!(e.earliest(CommandKind::Rd, bank(1, 0, 0, 0), 100), 100);
    }

    #[test]
    fn read_write_turnaround_is_enforced() {
        let mut e = engine();
        e.record(CommandKind::Rd, bank(0, 0, 0, 0), 0, 1);
        // RD -> WR on the same pseudo channel: tRTW = 7.
        assert_eq!(e.earliest(CommandKind::Wr, bank(0, 0, 2, 0), 0), 7);

        let mut e = engine();
        e.record(CommandKind::Wr, bank(0, 0, 0, 0), 0, 1);
        // WR -> RD different bank group: tCWL + burst + tWTR_S = 14 + 1 + 3.
        assert_eq!(e.earliest(CommandKind::Rd, bank(0, 0, 1, 0), 0), 18);
        // WR -> RD same bank group: tCWL + burst + tWTR_L = 14 + 1 + 9.
        assert_eq!(e.earliest(CommandKind::Rd, bank(0, 0, 0, 1), 0), 24);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut e = engine();
        e.record(CommandKind::Act, bank(0, 0, 0, 0), 0, 1);
        e.record(CommandKind::Wr, bank(0, 0, 0, 0), 16, 1);
        // PRE after WR: WR + tCWL + burst + tWR (dominates tRAS from ACT).
        let expected = 16 + 14 + 1 + 16;
        assert_eq!(e.earliest(CommandKind::Pre, bank(0, 0, 0, 0), 0), expected);
    }

    #[test]
    fn per_bank_refresh_blocks_that_bank_and_spaces_siblings() {
        let mut e = engine();
        e.record(CommandKind::RefPb, bank(0, 0, 0, 0), 0, 1);
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 0, 0, 0), 0), 280);
        // A second REFpb on the same rank must wait tRREFD.
        assert_eq!(e.earliest(CommandKind::RefPb, bank(0, 0, 1, 0), 0), 8);
        // ACT to a different bank of the same rank is not blocked.
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 0, 1, 0), 0), 0);
    }

    #[test]
    fn all_bank_refresh_blocks_entire_rank() {
        let mut e = engine();
        e.record(CommandKind::RefAb, bank(0, 1, 0, 0), 0, 1);
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 1, 3, 3), 0), 410);
        // Other stack ID unaffected.
        assert_eq!(e.earliest(CommandKind::Act, bank(0, 0, 0, 0), 0), 0);
    }

    #[test]
    fn precharge_all_applies_trp_to_every_bank_of_the_rank() {
        let mut e = engine();
        e.record(CommandKind::PreAll, bank(1, 2, 0, 0), 50, 1);
        assert_eq!(e.earliest(CommandKind::Act, bank(1, 2, 3, 2), 0), 66);
        assert_eq!(e.earliest(CommandKind::Act, bank(1, 1, 3, 2), 0), 0);
    }

    #[test]
    fn mrs_spacing_applies_on_rank() {
        let mut e = engine();
        e.record(CommandKind::Mrs, bank(0, 0, 0, 0), 10, 1);
        assert_eq!(e.earliest(CommandKind::Mrs, bank(0, 0, 3, 3), 10), 12);
    }
}
