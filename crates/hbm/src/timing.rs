//! HBM timing parameters (the paper's Table II and Table V).
//!
//! All values are integer nanoseconds. The HBM4 defaults follow the paper's
//! Table V; JEDEC has not finalized HBM4 timing, so the paper (and this
//! reproduction) adopts values from prior work.

use serde::{Deserialize, Serialize};

use crate::error::HbmError;

/// The conventional HBM timing parameters tracked by a memory controller.
///
/// The names follow the paper's Table II. Parameters the paper's table omits
/// but that a cycle-accurate model still needs (CAS latencies, refresh
/// intervals, bus-turnaround components) are filled with values consistent
/// with prior HBM studies and are documented field-by-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT to RD delay in the same bank.
    pub t_rcd_rd: u32,
    /// ACT to WR delay in the same bank.
    pub t_rcd_wr: u32,
    /// ACT to PRE delay in the same bank.
    pub t_ras: u32,
    /// PRE to ACT delay in the same bank.
    pub t_rp: u32,
    /// ACT to ACT delay in the same bank (row cycle time).
    pub t_rc: u32,
    /// RD/WR to RD/WR delay, different bank group (short).
    pub t_ccd_s: u32,
    /// RD/WR to RD/WR delay, same bank group (long).
    pub t_ccd_l: u32,
    /// RD/WR to RD/WR delay, different stack ID (rank).
    pub t_ccd_r: u32,
    /// Rolling window in which at most four ACTs may be issued.
    pub t_faw: u32,
    /// ACT to ACT delay to a different bank, different bank group.
    pub t_rrd_s: u32,
    /// ACT to ACT delay to a different bank, same bank group.
    pub t_rrd_l: u32,
    /// WR to RD delay, different bank group (after the write burst).
    pub t_wtr_s: u32,
    /// WR to RD delay, same bank group (after the write burst).
    pub t_wtr_l: u32,
    /// RD to WR turnaround delay on the same pseudo channel.
    pub t_rtw: u32,
    /// Write recovery: end of write burst to PRE in the same bank.
    pub t_wr: u32,
    /// RD to PRE delay in the same bank.
    pub t_rtp: u32,
    /// CAS (read) latency: RD to first data beat.
    pub t_cl: u32,
    /// CAS write latency: WR to first data beat.
    pub t_cwl: u32,
    /// Average periodic refresh interval (all-bank), per stack ID.
    pub t_refi: u32,
    /// All-bank refresh cycle time.
    pub t_rfc_ab: u32,
    /// Per-bank refresh average interval (one REFpb somewhere every this
    /// many ns keeps a 16-bank SID refreshed at the required rate).
    pub t_refi_pb: u32,
    /// Per-bank refresh cycle time.
    pub t_rfc_pb: u32,
    /// Minimum spacing between two per-bank refresh commands in the same
    /// pseudo channel + stack ID.
    pub t_rrefd: u32,
}

impl TimingParams {
    /// The HBM4 timing used by the paper (Table V), completed with the
    /// auxiliary parameters required for cycle-accurate simulation.
    pub fn hbm4() -> Self {
        TimingParams {
            t_rcd_rd: 16,
            t_rcd_wr: 16,
            t_ras: 29,
            t_rp: 16,
            t_rc: 45,
            t_ccd_s: 1,
            t_ccd_l: 2,
            t_ccd_r: 2,
            t_faw: 12,
            t_rrd_s: 2,
            t_rrd_l: 4,
            t_wtr_s: 3,
            t_wtr_l: 9,
            t_rtw: 7,
            t_wr: 16,
            t_rtp: 5,
            t_cl: 16,
            t_cwl: 14,
            t_refi: 3900,
            t_rfc_ab: 410,
            // One REFpb rotates over the 16 banks of a (PC, SID); each bank is
            // refreshed every 16 * t_refi_pb = t_refi * 16 / 16.
            t_refi_pb: 244,
            t_rfc_pb: 280,
            t_rrefd: 8,
        }
    }

    /// Number of distinct scheduling-relevant timing parameters a
    /// conventional MC must juggle (the paper's Table IV counts 15: the
    /// parameters of Table II plus the per-bank refresh spacing entries).
    pub fn conventional_parameter_count() -> usize {
        15
    }

    /// Validate that the parameters are mutually consistent.
    ///
    /// # Errors
    ///
    /// Returns [`HbmError::InvalidConfig`] when a derived relationship is
    /// violated (e.g. `t_rc < t_ras + t_rp`, or `t_ccd_s > t_ccd_l`).
    pub fn validate(&self) -> Result<(), HbmError> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(HbmError::InvalidConfig {
                reason: format!(
                    "t_rc ({}) must be >= t_ras ({}) + t_rp ({})",
                    self.t_rc, self.t_ras, self.t_rp
                ),
            });
        }
        if self.t_ccd_s > self.t_ccd_l {
            return Err(HbmError::InvalidConfig {
                reason: format!(
                    "t_ccd_s ({}) must be <= t_ccd_l ({})",
                    self.t_ccd_s, self.t_ccd_l
                ),
            });
        }
        if self.t_rrd_s > self.t_rrd_l {
            return Err(HbmError::InvalidConfig {
                reason: format!(
                    "t_rrd_s ({}) must be <= t_rrd_l ({})",
                    self.t_rrd_s, self.t_rrd_l
                ),
            });
        }
        if self.t_rtp == 0 || self.t_wr == 0 || self.t_ccd_s == 0 {
            return Err(HbmError::InvalidConfig {
                reason: "t_rtp, t_wr and t_ccd_s must be non-zero".to_string(),
            });
        }
        if self.t_rfc_pb > self.t_rfc_ab {
            return Err(HbmError::InvalidConfig {
                reason: format!(
                    "per-bank refresh time ({}) should not exceed all-bank refresh time ({})",
                    self.t_rfc_pb, self.t_rfc_ab
                ),
            });
        }
        Ok(())
    }

    /// Read-to-precharge spacing measured from the read command, including
    /// the burst occupancy implied by back-to-back scheduling.
    pub fn read_to_precharge(&self) -> u32 {
        self.t_rtp
    }

    /// Write-to-precharge spacing measured from the write command: CAS write
    /// latency + burst (1 ns at HBM4 granularity) + write recovery.
    pub fn write_to_precharge(&self, burst_ns: u32) -> u32 {
        self.t_cwl + burst_ns + self.t_wr
    }

    /// Write-to-read spacing measured from the write command for the given
    /// bank-group relationship.
    pub fn write_to_read(&self, same_bank_group: bool, burst_ns: u32) -> u32 {
        let wtr = if same_bank_group {
            self.t_wtr_l
        } else {
            self.t_wtr_s
        };
        self.t_cwl + burst_ns + wtr
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::hbm4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_matches_paper_table_v() {
        let t = TimingParams::hbm4();
        t.validate().unwrap();
        assert_eq!(t.t_rc, 45);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_ras, 29);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rcd_rd, 16);
        assert_eq!(t.t_rcd_wr, 16);
        assert_eq!(t.t_wr, 16);
        assert_eq!(t.t_faw, 12);
        assert_eq!(t.t_ccd_l, 2);
        assert_eq!(t.t_ccd_s, 1);
        assert_eq!(t.t_ccd_r, 2);
        assert_eq!(t.t_rrd_s, 2);
    }

    #[test]
    fn derived_spacings() {
        let t = TimingParams::hbm4();
        assert_eq!(t.read_to_precharge(), 5);
        assert_eq!(t.write_to_precharge(1), 14 + 1 + 16);
        assert_eq!(t.write_to_read(true, 1), 14 + 1 + 9);
        assert_eq!(t.write_to_read(false, 1), 14 + 1 + 3);
        assert_eq!(TimingParams::conventional_parameter_count(), 15);
    }

    #[test]
    fn inconsistent_parameters_are_rejected() {
        let mut t = TimingParams::hbm4();
        t.t_rc = 10;
        assert!(t.validate().is_err());

        let mut t = TimingParams::hbm4();
        t.t_ccd_s = 5;
        assert!(t.validate().is_err());

        let mut t = TimingParams::hbm4();
        t.t_rrd_l = 1;
        assert!(t.validate().is_err());

        let mut t = TimingParams::hbm4();
        t.t_rtp = 0;
        assert!(t.validate().is_err());

        let mut t = TimingParams::hbm4();
        t.t_rfc_pb = 1000;
        assert!(t.validate().is_err());
    }

    #[test]
    fn default_is_hbm4() {
        assert_eq!(TimingParams::default(), TimingParams::hbm4());
    }
}
