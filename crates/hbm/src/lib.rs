//! # rome-hbm — cycle-accurate HBM DRAM device model
//!
//! This crate is the DRAM substrate of the RoMe reproduction. It models an
//! HBM stack at the level of detail a memory-controller study needs:
//!
//! * the **organization** of a cube — channels, pseudo channels (PCs), stack
//!   IDs (SIDs), bank groups (BGs), banks, rows ([`Organization`]);
//! * the **command protocol** — `ACT`, `PRE`, `RD`, `WR`, per-bank and
//!   all-bank refresh ([`command::DramCommand`]);
//! * the **timing parameters** of HBM4 and their pairwise constraints
//!   ([`timing::TimingParams`], [`constraints`]);
//! * per-bank **finite-state machines** and row-buffer state ([`bank`]);
//! * a cycle-accurate **channel model** that validates command legality,
//!   tracks data-bus occupancy, and accumulates command/data counters for the
//!   energy model ([`channel::HbmChannel`]);
//! * the **HBM generation spec database** (HBM1 → HBM4) used by the paper's
//!   Figure 2 ([`specs`]).
//!
//! All timing is expressed in integer nanoseconds; at HBM4's 8 Gb/s pin rate a
//! 32 B burst on a 32-bit pseudo channel takes exactly 1 ns, so 1 ns doubles
//! as the column-command slot (`tCCDS`).
//!
//! # Example
//!
//! ```
//! use rome_hbm::{Organization, timing::TimingParams, channel::HbmChannel};
//! use rome_hbm::command::{DramCommand, CommandTarget};
//!
//! let org = Organization::hbm4();
//! let timing = TimingParams::hbm4();
//! let mut chan = HbmChannel::new(org, timing);
//!
//! // Activate row 3 of bank 0 / BG 0 / PC 0 / SID 0, then read column 0.
//! let target = CommandTarget::bank(0, 0, 0, 0);
//! assert!(chan.can_issue(&DramCommand::Act { target, row: 3 }, 0));
//! chan.issue(DramCommand::Act { target, row: 3 }, 0).unwrap();
//! let rd = DramCommand::Rd { target, column: 0, auto_precharge: false };
//! assert_eq!(chan.earliest_issue(&rd, 0), u64::from(chan.timing().t_rcd_rd));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod constraints;
pub mod counters;
pub mod error;
pub mod organization;
pub mod refresh;
pub mod specs;
pub mod timing;
pub mod units;

pub use address::{BankAddress, DramAddress, PhysicalAddress};
pub use bank::{Bank, BankState};
pub use channel::HbmChannel;
pub use command::{CommandTarget, DramCommand};
pub use counters::ChannelCounters;
pub use error::HbmError;
pub use organization::Organization;
pub use specs::{HbmGeneration, HbmSpec};
pub use timing::TimingParams;
pub use units::{Cycle, CACHE_LINE_BYTES, KIB, MIB};
