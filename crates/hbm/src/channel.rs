//! The cycle-accurate model of one HBM channel.
//!
//! [`HbmChannel`] combines the per-bank state machines ([`crate::bank`]),
//! the timing-constraint engine ([`crate::constraints`]), and the event
//! counters ([`crate::counters`]). Memory controllers drive it through three
//! methods: [`HbmChannel::earliest_issue`], [`HbmChannel::can_issue`], and
//! [`HbmChannel::issue`].

use serde::{Deserialize, Serialize};

use crate::bank::{Bank, BankState};
use crate::command::{CommandKind, DramCommand};
use crate::constraints::ConstraintEngine;
use crate::counters::ChannelCounters;
use crate::error::HbmError;
use crate::organization::Organization;
use crate::timing::TimingParams;
use crate::units::Cycle;

/// The outcome of successfully issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueResult {
    /// The cycle the command was accepted.
    pub issued_at: Cycle,
    /// For column commands, the cycle the data burst completes on the bus
    /// (i.e. when read data has been fully returned / write data absorbed).
    pub data_complete_at: Option<Cycle>,
}

/// One HBM channel: banks, timing state, data-bus occupancy, and counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmChannel {
    org: Organization,
    timing: TimingParams,
    constraints: ConstraintEngine,
    banks: Vec<Bank>,
    /// Row-open bitmask over the flat bank index (word `i` covers banks
    /// `64*i..64*i+64`, bit `b & 63` within word `b >> 6`). Invariant: bit
    /// `b` is set iff `banks[b].is_active()` — re-derived from the bank by
    /// [`HbmChannel::sync_bank_bit`] at every row-buffer mutation point in
    /// [`HbmChannel::issue`] (ACT, PRE, PREab, auto-precharge, REFpb,
    /// REFab), so rank-wide open-row queries AND a mask word instead of
    /// walking the bank slab.
    open_mask: Vec<u64>,
    /// Per pseudo channel: the cycle until which the data bus is occupied.
    bus_busy_until: Vec<Cycle>,
    counters: ChannelCounters,
}

impl HbmChannel {
    /// Create a channel for the given organization and timing.
    pub fn new(org: Organization, timing: TimingParams) -> Self {
        let banks = vec![Bank::new(); org.banks_per_channel() as usize];
        HbmChannel {
            constraints: ConstraintEngine::new(org, timing),
            open_mask: vec![0; banks.len().div_ceil(64)],
            banks,
            bus_busy_until: vec![0; org.pseudo_channels as usize],
            org,
            timing,
            counters: ChannelCounters::new(),
        }
    }

    /// The channel's organization.
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The accumulated event counters.
    pub fn counters(&self) -> &ChannelCounters {
        &self.counters
    }

    /// Reset the event counters (the timing state is preserved).
    pub fn reset_counters(&mut self) {
        self.counters = ChannelCounters::new();
    }

    /// The bank addressed by `cmd`, as a shared reference.
    pub fn bank(&self, cmd: &DramCommand) -> &Bank {
        &self.banks[self.constraints.bank_index(cmd.target().bank)]
    }

    /// The state of the bank addressed by `cmd` at cycle `now`.
    pub fn bank_state(&self, cmd: &DramCommand, now: Cycle) -> BankState {
        self.bank(cmd).state_at(now)
    }

    /// Iterate over all banks (flat index order).
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Check whether `cmd` is legal in the addressed bank's logical state
    /// (independent of timing).
    fn state_check(&self, cmd: &DramCommand, now: Cycle) -> Result<(), HbmError> {
        let addr = cmd.target().bank;
        if addr.pseudo_channel >= self.org.pseudo_channels
            || addr.stack_id >= self.org.stack_ids
            || addr.bank_group >= self.org.bank_groups
            || addr.bank >= self.org.banks_per_group
        {
            return Err(HbmError::AddressOutOfRange {
                what: "bank coordinate",
                value: addr.bank as u64,
                limit: self.org.banks_per_group as u64,
            });
        }
        let bank = &self.banks[self.constraints.bank_index(addr)];
        match cmd {
            DramCommand::Act { row, .. } => {
                if *row >= self.org.rows_per_bank {
                    return Err(HbmError::AddressOutOfRange {
                        what: "row",
                        value: *row as u64,
                        limit: self.org.rows_per_bank as u64,
                    });
                }
                if bank.is_active() {
                    return Err(HbmError::IllegalState {
                        command: *cmd,
                        reason: "ACT to a bank that already has an open row",
                    });
                }
                if bank.is_refreshing(now) {
                    return Err(HbmError::IllegalState {
                        command: *cmd,
                        reason: "ACT to a refreshing bank",
                    });
                }
            }
            DramCommand::Rd { column, .. } | DramCommand::Wr { column, .. } => {
                if *column as u32 >= self.org.columns_per_row() {
                    return Err(HbmError::AddressOutOfRange {
                        what: "column",
                        value: *column as u64,
                        limit: self.org.columns_per_row() as u64,
                    });
                }
                if !bank.is_active() {
                    return Err(HbmError::IllegalState {
                        command: *cmd,
                        reason: "column command to a bank with no open row",
                    });
                }
            }
            DramCommand::Pre { .. } => {
                // PRE to an idle bank is a legal no-op per JEDEC; we accept it.
            }
            DramCommand::PreAll { .. } | DramCommand::Mrs { .. } => {}
            DramCommand::RefPerBank { .. } => {
                if bank.is_active() {
                    return Err(HbmError::IllegalState {
                        command: *cmd,
                        reason: "REFpb to a bank with an open row (precharge first)",
                    });
                }
            }
            DramCommand::RefAllBank { target } => {
                // Every bank of the rank must be precharged: one mask query
                // over the rank's contiguous flat-index range.
                let (base, per_sid) =
                    self.rank_range(target.bank.pseudo_channel, target.bank.stack_id);
                if self.any_open_in(base, per_sid) {
                    return Err(HbmError::IllegalState {
                        command: *cmd,
                        reason: "REFab with open rows in the rank (precharge all first)",
                    });
                }
            }
        }
        Ok(())
    }

    /// The flat-index range `(base, len)` of the rank `(pc, sid)`. Banks of
    /// a rank are contiguous in flat index order (PC-major, then stack ID).
    fn rank_range(&self, pc: u8, sid: u8) -> (usize, usize) {
        let per_sid = (self.org.bank_groups * self.org.banks_per_group) as usize;
        let base = self
            .constraints
            .bank_index(crate::address::BankAddress::new(pc, sid, 0, 0));
        (base, per_sid)
    }

    /// Re-derive the open-row mask bit for `index` from the bank itself.
    /// Called after every mutation that may change `is_active`, which makes
    /// the mask invariant structural rather than per-call-site.
    #[inline]
    fn sync_bank_bit(&mut self, index: usize) {
        let bit = 1u64 << (index & 63);
        if self.banks[index].is_active() {
            self.open_mask[index >> 6] |= bit;
        } else {
            self.open_mask[index >> 6] &= !bit;
        }
    }

    /// Whether any bank in the flat-index range `[base, base + len)` holds an
    /// open row (mask words only; no bank loads).
    fn any_open_in(&self, base: usize, len: usize) -> bool {
        let end = base + len;
        let mut b = base;
        while b < end {
            let word = b >> 6;
            let lo = b & 63;
            let word_base = b - lo;
            let span = (end - word_base).min(64) - lo;
            let mask = if span == 64 {
                !0u64
            } else {
                ((1u64 << span) - 1) << lo
            };
            if self.open_mask[word] & mask != 0 {
                return true;
            }
            b = word_base + 64;
        }
        false
    }

    /// The earliest cycle (≥ `now`) at which `cmd` satisfies every timing
    /// constraint. State legality is not considered here.
    pub fn earliest_issue(&self, cmd: &DramCommand, now: Cycle) -> Cycle {
        self.constraints
            .earliest(cmd.kind(), cmd.target().bank, now)
    }

    /// Lower bound on the earliest issue of `kind` anywhere on pseudo
    /// channel `pc` (see [`ConstraintEngine::pseudo_channel_bound`]).
    pub fn pseudo_channel_bound(&self, kind: CommandKind, pc: u8) -> Cycle {
        self.constraints.pseudo_channel_bound(kind, pc)
    }

    /// Lower bound on the earliest ACT to any bank of the rank holding
    /// `addr` (see [`ConstraintEngine::rank_act_bound`]).
    pub fn rank_act_bound(&self, addr: crate::address::BankAddress) -> Cycle {
        self.constraints.rank_act_bound(addr)
    }

    /// Whether `cmd` can be issued at `now` (both timing-legal and
    /// state-legal).
    pub fn can_issue(&self, cmd: &DramCommand, now: Cycle) -> bool {
        self.state_check(cmd, now).is_ok() && self.earliest_issue(cmd, now) <= now
    }

    /// Issue `cmd` at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`HbmError::TimingViolation`] if a timing constraint would be
    /// violated, [`HbmError::IllegalState`] if the bank state does not admit
    /// the command, or [`HbmError::AddressOutOfRange`] for bad coordinates.
    pub fn issue(&mut self, cmd: DramCommand, now: Cycle) -> Result<IssueResult, HbmError> {
        self.state_check(&cmd, now)?;
        let earliest = self.earliest_issue(&cmd, now);
        if earliest > now {
            return Err(HbmError::TimingViolation {
                command: cmd,
                at: now,
                earliest,
            });
        }

        let burst = self.org.burst_ns() as u32;
        let addr = cmd.target().bank;
        let bank_index = self.constraints.bank_index(addr);
        let timing = self.timing;
        let mut data_complete_at = None;

        match cmd {
            DramCommand::Act { row, .. } => {
                self.banks[bank_index].activate(row, now, &timing);
                self.sync_bank_bit(bank_index);
                self.counters.activates += 1;
                self.counters.row_ca_commands += 1;
            }
            DramCommand::Pre { .. } => {
                self.banks[bank_index].precharge(now, &timing);
                self.sync_bank_bit(bank_index);
                self.counters.precharges += 1;
                self.counters.row_ca_commands += 1;
            }
            DramCommand::PreAll { target } => {
                let (base, per_sid) =
                    self.rank_range(target.bank.pseudo_channel, target.bank.stack_id);
                for i in base..base + per_sid {
                    if self.banks[i].is_active() {
                        self.banks[i].precharge(now, &timing);
                        self.sync_bank_bit(i);
                    }
                }
                self.counters.precharge_alls += 1;
                self.counters.row_ca_commands += 1;
            }
            DramCommand::Rd { auto_precharge, .. } => {
                let start = now + Cycle::from(timing.t_cl);
                let end = start + Cycle::from(burst);
                self.banks[bank_index].column_access(false, end);
                self.occupy_bus(addr.pseudo_channel, start, end);
                if auto_precharge {
                    let pre_at = now + Cycle::from(timing.t_rtp);
                    self.banks[bank_index].precharge(pre_at, &timing);
                    self.sync_bank_bit(bank_index);
                    self.constraints
                        .record(CommandKind::Pre, addr, pre_at, burst);
                    self.counters.precharges += 1;
                }
                self.counters.reads += 1;
                self.counters.col_ca_commands += 1;
                // A column command moves AG bytes on each of the channel's
                // pseudo channels only in legacy mode; in pseudo-channel mode
                // it moves AG bytes on its own PC.
                self.counters.bytes_read += self.org.access_granularity as u64;
                data_complete_at = Some(end);
            }
            DramCommand::Wr { auto_precharge, .. } => {
                let start = now + Cycle::from(timing.t_cwl);
                let end = start + Cycle::from(burst);
                self.banks[bank_index].column_access(true, end);
                self.occupy_bus(addr.pseudo_channel, start, end);
                if auto_precharge {
                    let pre_at = now + Cycle::from(timing.write_to_precharge(burst));
                    self.banks[bank_index].precharge(pre_at, &timing);
                    self.sync_bank_bit(bank_index);
                    self.constraints
                        .record(CommandKind::Pre, addr, pre_at, burst);
                    self.counters.precharges += 1;
                }
                self.counters.writes += 1;
                self.counters.col_ca_commands += 1;
                self.counters.bytes_written += self.org.access_granularity as u64;
                data_complete_at = Some(end);
            }
            DramCommand::RefPerBank { .. } => {
                self.banks[bank_index].refresh(now, Cycle::from(timing.t_rfc_pb));
                self.sync_bank_bit(bank_index);
                self.counters.refreshes_per_bank += 1;
                self.counters.row_ca_commands += 1;
            }
            DramCommand::RefAllBank { target } => {
                let (base, per_sid) =
                    self.rank_range(target.bank.pseudo_channel, target.bank.stack_id);
                for i in base..base + per_sid {
                    self.banks[i].refresh(now, Cycle::from(timing.t_rfc_ab));
                    self.sync_bank_bit(i);
                }
                self.counters.refreshes_all_bank += 1;
                self.counters.row_ca_commands += 1;
            }
            DramCommand::Mrs { .. } => {
                self.counters.mode_register_sets += 1;
                self.counters.row_ca_commands += 1;
            }
        }

        self.constraints.record(cmd.kind(), addr, now, burst);
        Ok(IssueResult {
            issued_at: now,
            data_complete_at,
        })
    }

    fn occupy_bus(&mut self, pc: u8, start: Cycle, end: Cycle) {
        let slot = &mut self.bus_busy_until[pc as usize];
        // Bursts scheduled under tCCD constraints never overlap; account the
        // full burst duration.
        *slot = (*slot).max(end);
        self.counters.data_bus_busy_ns += end - start;
    }

    /// The cycle until which the data bus of pseudo channel `pc` is occupied.
    pub fn bus_busy_until(&self, pc: u8) -> Cycle {
        self.bus_busy_until[pc as usize]
    }

    /// Number of banks currently holding an open row (a popcount over the
    /// open-row mask; no bank loads).
    pub fn open_banks(&self) -> usize {
        self.open_mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The row-open bitmask words (flat bank index order; see the field
    /// docs for the layout). Exposed so controllers and oracle tests can
    /// cross-check their own bank-availability masks against the channel's.
    pub fn open_bank_mask(&self) -> &[u64] {
        &self.open_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandTarget;

    fn channel() -> HbmChannel {
        HbmChannel::new(Organization::hbm4(), TimingParams::hbm4())
    }

    fn t(pc: u8, sid: u8, bg: u8, ba: u8) -> CommandTarget {
        CommandTarget::bank(pc, sid, bg, ba)
    }

    #[test]
    fn act_then_read_sequence_is_legal_and_counted() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 5 }, 0).unwrap();
        let rd = DramCommand::Rd {
            target,
            column: 0,
            auto_precharge: false,
        };
        assert!(!ch.can_issue(&rd, 10));
        let res = ch.issue(rd, 16).unwrap();
        assert_eq!(res.data_complete_at, Some(16 + 16 + 1));
        assert_eq!(ch.counters().activates, 1);
        assert_eq!(ch.counters().reads, 1);
        assert_eq!(ch.counters().bytes_read, 32);
        assert_eq!(ch.open_banks(), 1);
    }

    #[test]
    fn read_without_open_row_is_rejected() {
        let mut ch = channel();
        let rd = DramCommand::Rd {
            target: t(0, 0, 0, 0),
            column: 0,
            auto_precharge: false,
        };
        let err = ch.issue(rd, 0).unwrap_err();
        assert!(matches!(err, HbmError::IllegalState { .. }));
    }

    #[test]
    fn double_activation_is_rejected() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        let err = ch
            .issue(DramCommand::Act { target, row: 2 }, 100)
            .unwrap_err();
        assert!(matches!(err, HbmError::IllegalState { .. }));
    }

    #[test]
    fn timing_violation_reports_earliest_legal_cycle() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        let rd = DramCommand::Rd {
            target,
            column: 0,
            auto_precharge: false,
        };
        match ch.issue(rd, 3) {
            Err(HbmError::TimingViolation { earliest, .. }) => assert_eq!(earliest, 16),
            other => panic!("expected timing violation, got {other:?}"),
        }
    }

    #[test]
    fn auto_precharge_closes_the_row() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        ch.issue(
            DramCommand::Rd {
                target,
                column: 0,
                auto_precharge: true,
            },
            16,
        )
        .unwrap();
        assert_eq!(ch.open_banks(), 0);
        // Reactivation must respect both tRC from the original ACT (45) and
        // tRTP + tRP after the read (16 + 5 + 16 = 37); tRC dominates here.
        let act = DramCommand::Act { target, row: 2 };
        let earliest = ch.earliest_issue(&act, 0);
        assert_eq!(earliest, 45);
    }

    #[test]
    fn precharge_then_reactivate() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        // tRAS must elapse before PRE.
        assert!(!ch.can_issue(&DramCommand::Pre { target }, 20));
        ch.issue(DramCommand::Pre { target }, 29).unwrap();
        assert_eq!(ch.open_banks(), 0);
        // tRP then allows re-activation; tRC also satisfied at 45.
        assert!(ch.can_issue(&DramCommand::Act { target, row: 2 }, 45));
        ch.issue(DramCommand::Act { target, row: 2 }, 45).unwrap();
        assert_eq!(ch.counters().activates, 2);
        assert_eq!(ch.counters().precharges, 1);
    }

    #[test]
    fn out_of_range_row_and_column_are_rejected() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        let err = ch
            .issue(
                DramCommand::Act {
                    target,
                    row: 1 << 20,
                },
                0,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            HbmError::AddressOutOfRange { what: "row", .. }
        ));
        ch.issue(DramCommand::Act { target, row: 0 }, 0).unwrap();
        let err = ch
            .issue(
                DramCommand::Rd {
                    target,
                    column: 999,
                    auto_precharge: false,
                },
                16,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            HbmError::AddressOutOfRange { what: "column", .. }
        ));
        let bad_bank = DramCommand::Act {
            target: t(0, 0, 0, 200),
            row: 0,
        };
        assert!(matches!(
            ch.issue(bad_bank, 50),
            Err(HbmError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn refresh_all_bank_requires_precharged_rank_and_blocks_it() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        let refab = DramCommand::RefAllBank { target };
        assert!(matches!(
            ch.issue(refab, 60),
            Err(HbmError::IllegalState { .. })
        ));
        ch.issue(DramCommand::Pre { target }, 60).unwrap();
        ch.issue(refab, 80).unwrap();
        assert_eq!(ch.counters().refreshes_all_bank, 1);
        // During the refresh, ACT to any bank of the rank is blocked.
        let act = DramCommand::Act {
            target: t(0, 0, 3, 3),
            row: 0,
        };
        assert!(!ch.can_issue(&act, 200));
        assert!(ch.can_issue(&act, 80 + 410));
        // The other stack ID is unaffected.
        let act_other = DramCommand::Act {
            target: t(0, 1, 0, 0),
            row: 0,
        };
        assert!(ch.can_issue(&act_other, 200));
    }

    #[test]
    fn per_bank_refresh_blocks_only_that_bank() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::RefPerBank { target }, 0).unwrap();
        assert_eq!(ch.counters().refreshes_per_bank, 1);
        assert!(!ch.can_issue(&DramCommand::Act { target, row: 0 }, 100));
        let sibling = DramCommand::Act {
            target: t(0, 0, 1, 0),
            row: 0,
        };
        assert!(ch.can_issue(&sibling, 100));
    }

    #[test]
    fn streaming_reads_across_bank_groups_saturate_the_bus() {
        // Two banks in different bank groups, read alternately at tCCD_S,
        // keep the PC data bus fully busy — the premise of bank-group
        // interleaving (§II-B).
        let mut ch = channel();
        let a = t(0, 0, 0, 0);
        let b = t(0, 0, 1, 0);
        ch.issue(DramCommand::Act { target: a, row: 0 }, 0).unwrap();
        ch.issue(DramCommand::Act { target: b, row: 0 }, 2).unwrap();
        let mut now = 18; // both banks are tRCD-ready
        let before = *ch.counters();
        for i in 0..64u16 {
            let target = if i % 2 == 0 { a } else { b };
            let col = (i / 2) % 32;
            let cmd = DramCommand::Rd {
                target,
                column: col,
                auto_precharge: false,
            };
            let at = ch.earliest_issue(&cmd, now);
            ch.issue(cmd, at).unwrap();
            now = at;
        }
        let delta = ch.counters().delta_since(&before);
        assert_eq!(delta.reads, 64);
        // 64 reads at 1 ns tCCD_S => 64 ns of issue; utilization of that PC
        // must be essentially 100 %.
        assert_eq!(delta.bytes_read, 64 * 32);
        assert!(delta.data_bus_busy_ns >= 63);
    }

    #[test]
    fn mrs_and_preall_are_accepted_and_counted() {
        let mut ch = channel();
        ch.issue(
            DramCommand::Mrs {
                target: t(0, 0, 0, 0),
            },
            0,
        )
        .unwrap();
        ch.issue(
            DramCommand::PreAll {
                target: t(0, 0, 0, 0),
            },
            5,
        )
        .unwrap();
        assert_eq!(ch.counters().mode_register_sets, 1);
        assert_eq!(ch.counters().precharge_alls, 1);
        assert_eq!(ch.counters().row_ca_commands, 2);
    }

    #[test]
    fn open_mask_tracks_bank_state_across_mutations() {
        let mut ch = channel();
        let recount = |ch: &HbmChannel| {
            let mut words = vec![0u64; ch.open_bank_mask().len()];
            for (i, b) in ch.banks().enumerate() {
                if b.is_active() {
                    words[i >> 6] |= 1 << (i & 63);
                }
            }
            words
        };
        let check = |ch: &HbmChannel| {
            assert_eq!(ch.open_bank_mask(), recount(ch).as_slice());
            assert_eq!(
                ch.open_banks(),
                ch.banks().filter(|b| b.is_active()).count()
            );
        };
        check(&ch);
        ch.issue(
            DramCommand::Act {
                target: t(0, 0, 0, 0),
                row: 1,
            },
            0,
        )
        .unwrap();
        ch.issue(
            DramCommand::Act {
                target: t(1, 3, 2, 1),
                row: 9,
            },
            2,
        )
        .unwrap();
        check(&ch);
        // Auto-precharge closes the row and must clear the bit immediately.
        ch.issue(
            DramCommand::Rd {
                target: t(0, 0, 0, 0),
                column: 0,
                auto_precharge: true,
            },
            20,
        )
        .unwrap();
        check(&ch);
        ch.issue(
            DramCommand::Pre {
                target: t(1, 3, 2, 1),
            },
            60,
        )
        .unwrap();
        check(&ch);
        ch.issue(
            DramCommand::RefAllBank {
                target: t(1, 3, 0, 0),
            },
            120,
        )
        .unwrap();
        check(&ch);
        assert_eq!(ch.open_banks(), 0);
    }

    #[test]
    fn reset_counters_clears_only_counters() {
        let mut ch = channel();
        let target = t(0, 0, 0, 0);
        ch.issue(DramCommand::Act { target, row: 1 }, 0).unwrap();
        ch.reset_counters();
        assert_eq!(ch.counters().activates, 0);
        // Timing state preserved: immediate re-activation still illegal.
        assert!(matches!(
            ch.issue(DramCommand::Act { target, row: 2 }, 1),
            Err(HbmError::IllegalState { .. })
        ));
    }
}
