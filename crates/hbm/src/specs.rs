//! HBM generation specification database.
//!
//! The paper's Figure 2 plots, across HBM generations, (a) per-pin data rate,
//! DRAM core frequency, and channel width, and (b) the growth of the
//! command/address (C/A) pin overhead relative to data (DQ) pins and the
//! aggregate C/A bandwidth. This module captures those specs so the figure
//! can be regenerated, and so the RoMe pin accounting (§IV-D/E) has a single
//! source of truth for the HBM4 interface.

use serde::{Deserialize, Serialize};

/// An HBM standard generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HbmGeneration {
    /// First-generation HBM (JESD235, 2013).
    Hbm1,
    /// HBM2 (JESD235A/B).
    Hbm2,
    /// HBM2E.
    Hbm2e,
    /// HBM3 (JESD238).
    Hbm3,
    /// HBM3E.
    Hbm3e,
    /// HBM4 (JESD270-4, 2025) — the paper's baseline.
    Hbm4,
}

impl HbmGeneration {
    /// All generations in chronological order.
    pub const ALL: [HbmGeneration; 6] = [
        HbmGeneration::Hbm1,
        HbmGeneration::Hbm2,
        HbmGeneration::Hbm2e,
        HbmGeneration::Hbm3,
        HbmGeneration::Hbm3e,
        HbmGeneration::Hbm4,
    ];

    /// The marketing / JEDEC name of the generation.
    pub fn name(self) -> &'static str {
        match self {
            HbmGeneration::Hbm1 => "HBM1",
            HbmGeneration::Hbm2 => "HBM2",
            HbmGeneration::Hbm2e => "HBM2E",
            HbmGeneration::Hbm3 => "HBM3",
            HbmGeneration::Hbm3e => "HBM3E",
            HbmGeneration::Hbm4 => "HBM4",
        }
    }

    /// The interface specification for this generation.
    pub fn spec(self) -> HbmSpec {
        match self {
            HbmGeneration::Hbm1 => HbmSpec {
                generation: self,
                data_rate_gbps: 1.0,
                core_frequency_mhz: 250,
                channel_width_bits: 128,
                channels_per_cube: 8,
                pseudo_channels_per_channel: 1,
                row_ca_pins_per_channel: 8,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 500,
            },
            HbmGeneration::Hbm2 => HbmSpec {
                generation: self,
                data_rate_gbps: 2.0,
                core_frequency_mhz: 250,
                channel_width_bits: 128,
                channels_per_cube: 8,
                pseudo_channels_per_channel: 2,
                row_ca_pins_per_channel: 8,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 1000,
            },
            HbmGeneration::Hbm2e => HbmSpec {
                generation: self,
                data_rate_gbps: 3.6,
                core_frequency_mhz: 300,
                channel_width_bits: 128,
                channels_per_cube: 8,
                pseudo_channels_per_channel: 2,
                row_ca_pins_per_channel: 8,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 1800,
            },
            HbmGeneration::Hbm3 => HbmSpec {
                generation: self,
                data_rate_gbps: 6.4,
                core_frequency_mhz: 400,
                channel_width_bits: 64,
                channels_per_cube: 16,
                pseudo_channels_per_channel: 2,
                row_ca_pins_per_channel: 10,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 3200,
            },
            HbmGeneration::Hbm3e => HbmSpec {
                generation: self,
                data_rate_gbps: 9.6,
                core_frequency_mhz: 500,
                channel_width_bits: 64,
                channels_per_cube: 16,
                pseudo_channels_per_channel: 2,
                row_ca_pins_per_channel: 10,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 4800,
            },
            HbmGeneration::Hbm4 => HbmSpec {
                generation: self,
                data_rate_gbps: 8.0,
                core_frequency_mhz: 500,
                channel_width_bits: 64,
                channels_per_cube: 32,
                pseudo_channels_per_channel: 2,
                row_ca_pins_per_channel: 10,
                col_ca_pins_per_channel: 8,
                ca_clock_mhz: 4000,
            },
        }
    }
}

impl std::fmt::Display for HbmGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Interface-level specification of one HBM generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmSpec {
    /// Which generation this spec describes.
    pub generation: HbmGeneration,
    /// Per-pin data rate in Gb/s.
    pub data_rate_gbps: f64,
    /// DRAM core (bank) frequency in MHz.
    pub core_frequency_mhz: u32,
    /// Data (DQ) width of one channel in bits.
    pub channel_width_bits: u32,
    /// Channels per cube.
    pub channels_per_cube: u32,
    /// Pseudo channels per channel.
    pub pseudo_channels_per_channel: u32,
    /// Row-command C/A pins per channel.
    pub row_ca_pins_per_channel: u32,
    /// Column-command C/A pins per channel.
    pub col_ca_pins_per_channel: u32,
    /// C/A pin toggle rate in MHz (command bus clock, DDR where applicable).
    pub ca_clock_mhz: u32,
}

impl HbmSpec {
    /// Total C/A pins per channel (row + column).
    pub fn ca_pins_per_channel(&self) -> u32 {
        self.row_ca_pins_per_channel + self.col_ca_pins_per_channel
    }

    /// Total data pins per channel.
    pub fn dq_pins_per_channel(&self) -> u32 {
        self.channel_width_bits
    }

    /// Ratio of C/A pins to DQ pins per channel (Fig. 2(b) left axis).
    pub fn ca_to_dq_ratio(&self) -> f64 {
        self.ca_pins_per_channel() as f64 / self.dq_pins_per_channel() as f64
    }

    /// Aggregate C/A bandwidth per cube in GB/s (Fig. 2(b) right axis):
    /// C/A pins × channels × toggle rate.
    pub fn ca_bandwidth_gbs_per_cube(&self) -> f64 {
        self.ca_pins_per_channel() as f64
            * self.channels_per_cube as f64
            * self.ca_clock_mhz as f64
            * 1.0e6
            / 8.0
            / 1.0e9
    }

    /// Peak data bandwidth per cube in GB/s.
    pub fn data_bandwidth_gbs_per_cube(&self) -> f64 {
        self.channel_width_bits as f64 * self.channels_per_cube as f64 * self.data_rate_gbps / 8.0
    }

    /// Per-channel data bandwidth in GB/s.
    pub fn channel_bandwidth_gbs(&self) -> f64 {
        self.channel_width_bits as f64 * self.data_rate_gbps / 8.0
    }
}

/// A single row of the Figure 2 trend table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendRow {
    /// Generation name.
    pub generation: HbmGeneration,
    /// Per-pin data rate (Gb/s).
    pub data_rate_gbps: f64,
    /// Core frequency (MHz).
    pub core_frequency_mhz: u32,
    /// Channel width (bits).
    pub channel_width_bits: u32,
    /// C/A-to-DQ pin ratio.
    pub ca_to_dq_ratio: f64,
    /// C/A bandwidth per cube (GB/s).
    pub ca_bandwidth_gbs: f64,
}

/// Produce the Figure 2 trend table across all generations.
pub fn generation_trends() -> Vec<TrendRow> {
    HbmGeneration::ALL
        .iter()
        .map(|g| {
            let s = g.spec();
            TrendRow {
                generation: *g,
                data_rate_gbps: s.data_rate_gbps,
                core_frequency_mhz: s.core_frequency_mhz,
                channel_width_bits: s.channel_width_bits,
                ca_to_dq_ratio: s.ca_to_dq_ratio(),
                ca_bandwidth_gbs: s.ca_bandwidth_gbs_per_cube(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_spec_matches_paper() {
        let s = HbmGeneration::Hbm4.spec();
        // HBM4: 32 channels, 64-bit channels, 8 Gb/s, 2 TB/s per cube.
        assert_eq!(s.channels_per_cube, 32);
        assert_eq!(s.channel_width_bits, 64);
        assert_eq!(s.data_rate_gbps, 8.0);
        assert_eq!(s.data_bandwidth_gbs_per_cube(), 2048.0);
        // Each 64-bit channel carries 10 row + 8 column C/A pins (§II-B).
        assert_eq!(s.row_ca_pins_per_channel, 10);
        assert_eq!(s.col_ca_pins_per_channel, 8);
        assert_eq!(s.ca_pins_per_channel(), 18);
    }

    #[test]
    fn channel_width_halves_and_channels_double_across_generations() {
        let h2e = HbmGeneration::Hbm2e.spec();
        let h3 = HbmGeneration::Hbm3.spec();
        let h4 = HbmGeneration::Hbm4.spec();
        assert_eq!(h3.channel_width_bits * 2, h2e.channel_width_bits);
        assert_eq!(h3.channels_per_cube, h2e.channels_per_cube * 2);
        // HBM4 doubles channels again without halving width.
        assert_eq!(h4.channels_per_cube, h3.channels_per_cube * 2);
        assert_eq!(h4.channel_width_bits, h3.channel_width_bits);
    }

    #[test]
    fn ca_to_dq_ratio_roughly_doubles_from_hbm1_to_hbm4() {
        let r1 = HbmGeneration::Hbm1.spec().ca_to_dq_ratio();
        let r4 = HbmGeneration::Hbm4.spec().ca_to_dq_ratio();
        assert!(r4 / r1 > 1.8, "expected ~2x growth, got {}", r4 / r1);
    }

    #[test]
    fn trends_are_monotone_in_data_rate_until_hbm3e() {
        let rows = generation_trends();
        assert_eq!(rows.len(), 6);
        for pair in rows.windows(2).take(4) {
            assert!(pair[1].data_rate_gbps > pair[0].data_rate_gbps);
        }
        // Core frequency grows far slower than data rate (the paper's point).
        let first = &rows[0];
        let last = &rows[5];
        let rate_growth = last.data_rate_gbps / first.data_rate_gbps;
        let core_growth = last.core_frequency_mhz as f64 / first.core_frequency_mhz as f64;
        assert!(rate_growth > 3.0 * core_growth);
    }

    #[test]
    fn generation_names_and_order() {
        assert_eq!(HbmGeneration::Hbm1.to_string(), "HBM1");
        assert_eq!(HbmGeneration::Hbm4.to_string(), "HBM4");
        assert!(HbmGeneration::Hbm1 < HbmGeneration::Hbm4);
    }

    #[test]
    fn ca_bandwidth_grows_across_generations() {
        let rows = generation_trends();
        assert!(rows[5].ca_bandwidth_gbs > rows[0].ca_bandwidth_gbs * 5.0);
    }
}
