//! Refresh requirement bookkeeping.
//!
//! DRAM cells must be refreshed within the retention window. The memory
//! controller chooses between **all-bank refresh** (one `REFab` per rank
//! every `tREFI`, stalling the whole rank for `tRFCab`) and **per-bank
//! refresh** (one `REFpb` every `tREFIpb`, rotating over the banks, stalling
//! only the refreshed bank for `tRFCpb`). This module computes when refreshes
//! are due and quantifies their bandwidth overhead; the controllers in
//! `rome-mc` and `rome-core` consume it.

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;
use crate::units::Cycle;

/// Refresh strategy used by a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshMode {
    /// One `REFab` per rank every `tREFI`.
    AllBank,
    /// One `REFpb` every `tREFIpb`, rotating across banks (the mode both the
    /// baseline and RoMe use in the paper's evaluation, §VI-A).
    PerBank,
}

/// Tracks refresh obligations for one rank (pseudo channel × stack ID).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshScheduler {
    mode: RefreshMode,
    interval: Cycle,
    next_due: Cycle,
    banks_in_rank: u32,
    next_bank: u32,
    issued: u64,
    /// Maximum number of refresh commands that may be postponed (JEDEC allows
    /// pulling in / pushing out a bounded number of refreshes).
    max_postponed: u32,
}

impl RefreshScheduler {
    /// Create a scheduler for one rank with `banks_in_rank` banks.
    pub fn new(mode: RefreshMode, timing: &TimingParams, banks_in_rank: u32) -> Self {
        let interval = match mode {
            RefreshMode::AllBank => Cycle::from(timing.t_refi),
            RefreshMode::PerBank => Cycle::from(timing.t_refi_pb),
        };
        RefreshScheduler {
            mode,
            interval,
            next_due: interval,
            banks_in_rank,
            next_bank: 0,
            issued: 0,
            max_postponed: 8,
        }
    }

    /// The refresh mode.
    pub fn mode(&self) -> RefreshMode {
        self.mode
    }

    /// The average interval between refresh commands.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Total refresh commands issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether a refresh is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_due
    }

    /// The cycle at which the next refresh becomes due.
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// The cycle at which the pending refresh becomes urgent (the
    /// postponement budget is exhausted).
    pub fn urgent_at(&self) -> Cycle {
        self.next_due + Cycle::from(self.max_postponed) * self.interval
    }

    /// The next cycle strictly after `now` at which this scheduler's state
    /// changes on its own: the refresh becoming due, then becoming urgent.
    /// `None` once the pending refresh is already urgent (only an
    /// `acknowledge` changes the state from there).
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if now < self.next_due {
            Some(self.next_due)
        } else if now < self.urgent_at() {
            Some(self.urgent_at())
        } else {
            None
        }
    }

    /// Whether refreshes have been postponed to the limit, i.e. the refresh
    /// must be issued before any further requests are served.
    pub fn urgent(&self, now: Cycle) -> bool {
        now >= self.next_due + Cycle::from(self.max_postponed) * self.interval
    }

    /// Record that a refresh was issued at `now`; returns the bank index the
    /// command should target when in per-bank mode (round-robin).
    pub fn acknowledge(&mut self, _now: Cycle) -> u32 {
        let bank = self.next_bank;
        self.next_bank = (self.next_bank + 1) % self.banks_in_rank.max(1);
        self.next_due += self.interval;
        self.issued += 1;
        bank
    }

    /// Skip the rotation to a specific interval multiple (used when the
    /// controller pools two per-bank refreshes, as RoMe's §V-B optimization
    /// does by issuing one refresh every `2 × tREFIpb`).
    pub fn set_interval_multiple(&mut self, multiple: u32) {
        let base = self.interval / Cycle::from(self.multiple_estimate().max(1));
        self.interval = base * Cycle::from(multiple.max(1));
    }

    fn multiple_estimate(&self) -> u32 {
        1
    }

    /// Fraction of time a bank is unavailable due to refresh under this
    /// scheduler (steady-state analytical estimate).
    pub fn bank_unavailability(&self, timing: &TimingParams) -> f64 {
        match self.mode {
            RefreshMode::AllBank => timing.t_rfc_ab as f64 / timing.t_refi as f64,
            RefreshMode::PerBank => {
                // Each bank receives one REFpb every banks_in_rank * tREFIpb.
                timing.t_rfc_pb as f64 / (self.banks_in_rank as f64 * timing.t_refi_pb as f64)
            }
        }
    }
}

/// Analytical refresh-overhead summary used in tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshOverhead {
    /// Fraction of each bank's time lost to refresh.
    pub per_bank_unavailability: f64,
    /// Number of refresh commands per rank per `tREFW`-equivalent window of
    /// 32 ms.
    pub commands_per_32ms: u64,
}

/// Compute the steady-state refresh overhead for a rank of `banks_in_rank`
/// banks under `mode`.
pub fn refresh_overhead(
    mode: RefreshMode,
    timing: &TimingParams,
    banks_in_rank: u32,
) -> RefreshOverhead {
    let sched = RefreshScheduler::new(mode, timing, banks_in_rank);
    let window_ns: u64 = 32_000_000;
    RefreshOverhead {
        per_bank_unavailability: sched.bank_unavailability(timing),
        commands_per_32ms: window_ns / sched.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bank_scheduler_rotates_banks_round_robin() {
        let t = TimingParams::hbm4();
        let mut s = RefreshScheduler::new(RefreshMode::PerBank, &t, 16);
        assert_eq!(s.mode(), RefreshMode::PerBank);
        assert!(!s.due(0));
        assert!(s.due(t.t_refi_pb as u64));
        let b0 = s.acknowledge(t.t_refi_pb as u64);
        let b1 = s.acknowledge(2 * t.t_refi_pb as u64);
        assert_eq!(b0, 0);
        assert_eq!(b1, 1);
        assert_eq!(s.issued(), 2);
        // After 16 acknowledgements the rotation wraps.
        let mut s = RefreshScheduler::new(RefreshMode::PerBank, &t, 4);
        for expect in [0, 1, 2, 3, 0, 1] {
            assert_eq!(s.acknowledge(0), expect);
        }
    }

    #[test]
    fn all_bank_scheduler_uses_trefi() {
        let t = TimingParams::hbm4();
        let s = RefreshScheduler::new(RefreshMode::AllBank, &t, 16);
        assert_eq!(s.interval(), t.t_refi as u64);
        assert!(s.due(3900));
        assert!(!s.due(3899));
    }

    #[test]
    fn urgency_kicks_in_after_postponement_budget() {
        let t = TimingParams::hbm4();
        let s = RefreshScheduler::new(RefreshMode::PerBank, &t, 16);
        let due = t.t_refi_pb as u64;
        assert!(!s.urgent(due));
        assert!(s.urgent(due + 9 * t.t_refi_pb as u64));
    }

    #[test]
    fn per_bank_unavailability_is_small_and_below_all_bank() {
        let t = TimingParams::hbm4();
        let pb = refresh_overhead(RefreshMode::PerBank, &t, 16);
        let ab = refresh_overhead(RefreshMode::AllBank, &t, 16);
        assert!(pb.per_bank_unavailability < 0.10);
        assert!(
            pb.per_bank_unavailability < ab.per_bank_unavailability,
            "per-bank refresh should stall each bank less than all-bank ({} vs {})",
            pb.per_bank_unavailability,
            ab.per_bank_unavailability
        );
        assert!(pb.commands_per_32ms > ab.commands_per_32ms);
    }

    #[test]
    fn next_event_reports_due_then_urgent_then_none() {
        let t = TimingParams::hbm4();
        let mut s = RefreshScheduler::new(RefreshMode::PerBank, &t, 16);
        let due = s.next_due();
        assert_eq!(due, t.t_refi_pb as u64);
        assert_eq!(s.next_event_at(0), Some(due));
        assert_eq!(s.next_event_at(due), Some(s.urgent_at()));
        assert_eq!(s.next_event_at(s.urgent_at()), None);
        // Acknowledging pushes the due time forward by one interval.
        s.acknowledge(due);
        assert_eq!(s.next_due(), 2 * due);
    }

    #[test]
    fn interval_multiple_scales_interval() {
        let t = TimingParams::hbm4();
        let mut s = RefreshScheduler::new(RefreshMode::PerBank, &t, 16);
        let base = s.interval();
        s.set_interval_multiple(2);
        assert_eq!(s.interval(), base * 2);
    }
}
