//! Flight recorder: record a bank-conflicting run's per-request lifecycle
//! and write it as Chrome trace-event JSON.
//!
//! Run with `cargo run --release --example flight_recorder`, then open the
//! printed `.json` file in Perfetto (<https://ui.perfetto.dev>) or
//! chrome://tracing: one process row per channel, one thread row per bank,
//! request spans and row-open/refresh spans on the bank tracks.
//!
//! Two clocks, one rule: every timestamp in the trace is *simulation* time
//! (nanoseconds of modelled DRAM activity) — the recorder never mixes in
//! wall-clock, so the same workload produces a byte-identical trace on any
//! machine.

use rome::engine::{RunBudget, TraceSink};
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::mc::workload;
use rome::telemetry::trace::{chrome_trace_json, TraceConfig, TraceLevel};

fn main() {
    // 1 MiB of sequential 4 KiB reads through one HBM4 channel: the
    // sequence wraps the bank set eight times, so every bank sees repeated
    // row conflicts — precharge/activate churn the trace makes visible.
    let requests = workload::streaming_reads(0, 1024 * 1024, 4096);
    let mut controller = ChannelController::new(ControllerConfig::hbm4_baseline());

    // Arm a command-level recorder on the run's budget. `Requests` level
    // records arrivals, queue residency, issues, and completions;
    // `Commands` adds per-bank row-open spans and refresh windows.
    let sink = TraceSink::new(TraceConfig::with_level(TraceLevel::Commands));
    let budget = RunBudget::unlimited().with_trace(sink.clone());
    let report =
        rome::mc::simulate::run_with_budget(&mut controller, requests, 50_000_000, &budget);

    let trace = sink.take();
    let completions = trace
        .events
        .iter()
        .filter(|e| e.kind.as_str() == "complete")
        .count();
    let row_opens = trace
        .events
        .iter()
        .filter(|e| e.kind.as_str() == "row_open")
        .count();
    println!(
        "simulated {} requests in {} ns ({:.1} GB/s)",
        report.requests_completed, report.finish_time, report.achieved_bandwidth_gbps
    );
    println!(
        "recorded {} events ({} completions, {} row-open spans, {} dropped)",
        trace.events.len(),
        completions,
        row_opens,
        trace.dropped
    );

    let path = "flight_recorder_trace.json";
    std::fs::write(path, chrome_trace_json(&trace.events)).expect("write trace file");
    println!("wrote {path} — open it in https://ui.perfetto.dev or chrome://tracing");
}
