//! DRAM energy breakdown of a decode step on HBM4 vs RoMe (the scenario
//! behind Figure 14).
//!
//! Run with `cargo run --release --example energy_breakdown`.

use rome::energy::dram_energy::EnergyParams;
use rome::llm::ModelConfig;
use rome::sim::{decode_energy, AcceleratorSpec, MemoryModel};

fn main() {
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    let params = EnergyParams::hbm4();

    for model in ModelConfig::paper_models() {
        let cmp = decode_energy(&model, 256, 8192, &hbm4, &rome, &params);
        println!("{} (batch 256, seq 8K):", model.name);
        println!(
            "  HBM4 : ACT {:8.1} mJ  CAS {:8.1} mJ  I/O {:8.1} mJ  interposer {:8.1} mJ  C/A {:6.1} mJ",
            cmp.hbm4.act_pj / 1e9,
            cmp.hbm4.cas_pj / 1e9,
            cmp.hbm4.io_pj / 1e9,
            cmp.hbm4.interposer_pj / 1e9,
            cmp.hbm4.ca_pj / 1e9,
        );
        println!(
            "  RoMe : ACT {:8.1} mJ  CAS {:8.1} mJ  I/O {:8.1} mJ  interposer {:8.1} mJ  C/A {:6.1} mJ  cmd-gen {:5.2} mJ",
            cmp.rome.act_pj / 1e9,
            cmp.rome.cas_pj / 1e9,
            cmp.rome.io_pj / 1e9,
            cmp.rome.interposer_pj / 1e9,
            cmp.rome.ca_pj / 1e9,
            cmp.rome.command_generator_pj / 1e9,
        );
        println!(
            "  ACT energy ratio {:.3}, total energy ratio {:.3} (paper: ACT 0.555/0.860/0.844, total ≈ 0.98-0.99)\n",
            cmp.act_energy_ratio(),
            cmp.total_energy_ratio()
        );
    }
}
