//! Quickstart: stream data through one conventional HBM4 channel and one
//! RoMe channel, and compare bandwidth, activations, and controller effort.
//!
//! Run with `cargo run --release --example quickstart`.

use rome::core::controller::{RomeController, RomeControllerConfig};
use rome::core::ComplexityComparison;
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::mc::workload;

fn main() {
    let bytes: u64 = 4 * 1024 * 1024;

    // Conventional HBM4 channel: 32 B cache-line requests, FR-FCFS, 64-entry
    // queue.
    let mut hbm4 = ChannelController::new(ControllerConfig::hbm4_baseline());
    let hbm4_report =
        rome::mc::simulate::run_to_completion(&mut hbm4, workload::streaming_reads(0, bytes, 32));

    // RoMe channel: 4 KB row-granularity requests, 4-entry queue.
    let mut rome_ctrl = RomeController::new(RomeControllerConfig::paper_default());
    let rome_report = rome::core::simulate::run_to_completion(
        &mut rome_ctrl,
        workload::streaming_reads(0, bytes, 4096),
    );

    println!(
        "streaming {} MiB of reads through one channel (peak 64 GB/s):\n",
        bytes >> 20
    );
    println!(
        "  HBM4 : {:6.1} GB/s, {:5.0} requests, {:.2} ACT/KiB, mean latency {:5.1} ns",
        hbm4_report.achieved_bandwidth_gbps,
        hbm4_report.requests_completed as f64,
        hbm4_report.activates_per_kib,
        hbm4_report.mean_read_latency
    );
    println!(
        "  RoMe : {:6.1} GB/s, {:5.0} requests, {:.2} ACT/KiB, mean latency {:5.1} ns",
        rome_report.achieved_bandwidth_gbps,
        rome_report.requests_completed as f64,
        rome_report.activates_per_kib,
        rome_report.mean_read_latency
    );

    let cmp = ComplexityComparison::paper_default();
    println!(
        "\nRoMe reaches this with a scheduler {:.1} % the size of the conventional one",
        cmp.scheduling_area_ratio() * 100.0
    );
    println!(
        "({} timing parameters vs {}, {} bank FSMs vs {}, 4-entry queue vs 64).",
        cmp.rome.timing_parameters,
        cmp.conventional.timing_parameters,
        cmp.rome.bank_fsms,
        cmp.conventional.bank_fsms
    );
}
