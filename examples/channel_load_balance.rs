//! Channel load-balance rate of RoMe's 4 KB access granularity across batch
//! sizes (the scenario behind Figure 13).
//!
//! Run with `cargo run --release --example channel_load_balance`.

use rome::llm::{decode_step, ModelConfig, Parallelism};
use rome::sim::{channel_load_balance, AcceleratorSpec, MemoryModel};

fn main() {
    let accel = AcceleratorSpec::paper_default();
    let rome = MemoryModel::rome(&accel);
    let hbm4 = MemoryModel::hbm4_baseline(&accel);

    println!(
        "{:<14} {:>6} {:>16} {:>10} {:>22}",
        "model", "batch", "LBR_attn (RoMe)", "LBR_ffn", "LBR_attn (HBM4, 32 B)"
    );
    for model in ModelConfig::paper_models() {
        let par = Parallelism::paper_decode(&model);
        for batch in [8u64, 32, 128, 256] {
            let step = decode_step(&model, &par, batch, 8192);
            let coarse = channel_load_balance(&step, rome.channels, rome.access_granularity);
            let fine = channel_load_balance(&step, hbm4.channels, hbm4.access_granularity);
            println!(
                "{:<14} {:>6} {:>16.3} {:>10.3} {:>22.3}",
                model.name, batch, coarse.attention, coarse.ffn, fine.attention
            );
        }
    }
    println!("\nValues near 1.0 mean the 4 KB chunks of the step's tensors spread evenly over all");
    println!("288 channels; the imbalance shrinks as the batch (and therefore the KV cache and");
    println!("number of activated experts) grows — the paper's Figure 13 trend.");
}
