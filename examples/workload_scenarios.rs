//! Serving-style workload scenarios on the streaming workload subsystem:
//!
//! 1. a **closed-loop MoE-skew window sweep** — DeepSeek-V3-derived expert
//!    routing with Zipf hot-expert skew, driven through a `ClosedLoopHost`
//!    at increasing windows on both memory systems (the latency/bandwidth
//!    curve);
//! 2. a **prefill/decode interleave** run with per-phase attribution;
//! 3. a **multi-tenant mix** with per-tenant attribution.
//!
//! Run with: `cargo run --release --example workload_scenarios`

use rome::llm::{decode_step, ModelConfig, Parallelism};
use rome::mc::system::{MemorySystem, MemorySystemConfig};
use rome::sim::serving::closed_loop_sweep;
use rome::sim::MemorySystemKind;
use rome::workload::{
    ClassedStats, MoeRoutingConfig, MoeRoutingSource, MultiTenantMixSource, PrefillDecodeConfig,
    PrefillDecodeInterleaveSource, TenantSpec, TrafficSource,
};

fn moe_source(seed: u64) -> MoeRoutingSource {
    // Expert regions derived from a real DeepSeek-V3 decode step, scaled for
    // a sampled 4-channel system, with a hot-expert Zipf skew.
    let model = ModelConfig::deepseek_v3();
    let par = Parallelism::paper_decode(&model);
    let step = decode_step(&model, &par, 32, 4096);
    let mut cfg =
        MoeRoutingConfig::from_step(&step, &model.ffn, 4096, 1 << 12).expect("DeepSeek-V3 is MoE");
    cfg.layers = 2; // sample the layer dimension
    cfg.steps = 2;
    cfg.tokens_per_step = 16;
    cfg.zipf_exponent = 1.2;
    cfg.seed = seed;
    MoeRoutingSource::new(cfg)
}

fn main() {
    // ---- 1. Closed-loop MoE-skew window sweep, both memory systems. ----
    let windows = [1usize, 4, 16, 64];
    println!("closed-loop MoE routing skew (DeepSeek-V3-derived, Zipf 1.2):");
    for kind in [MemorySystemKind::Hbm4, MemorySystemKind::Rome] {
        let points = closed_loop_sweep(kind, 4, &windows, 50_000_000, |_| moe_source(42));
        println!("  {kind}:");
        println!("    window   completed   GB/s      mean ns     max ns");
        for p in &points {
            println!(
                "    {:>6}   {:>9}   {:7.2}   {:9.1}   {:>8}",
                p.window, p.completed, p.achieved_gbps, p.mean_latency_ns, p.max_latency_ns
            );
        }
    }

    // ---- 2. Prefill/decode interleave with per-phase stats. ----
    let model = ModelConfig::grok_1();
    let mut cfg = PrefillDecodeConfig::from_model(&model, 16, 4096, 1 << 20);
    cfg.phase_period_ns = 2_000;
    let mut source = PrefillDecodeInterleaveSource::new(cfg);
    let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(4));
    let (done, stop) = sys.run_with_source(&mut source, 50_000_000);
    let mut phases = ClassedStats::with_classes(["prefill", "decode"]);
    for c in &done {
        let class = match PrefillDecodeInterleaveSource::stage_of(c.id) {
            rome::llm::Stage::Prefill => 0,
            rome::llm::Stage::Decode => 1,
        };
        phases.record(class, c);
    }
    println!("\nprefill/decode interleave (Grok-1-derived) on HBM4, {stop} ns:");
    for (label, s) in phases.iter() {
        println!(
            "  {label:>8}: {:>5} requests, {:>9} B, {:7.2} GB/s, mean latency {:8.1} ns",
            s.completed,
            s.bytes,
            s.bandwidth_gbps(stop),
            s.mean_latency_ns()
        );
    }

    // ---- 3. Multi-tenant mix with per-tenant stats. ----
    let specs = vec![
        TenantSpec {
            name: "deepseek-b8".into(),
            model: ModelConfig::deepseek_v3(),
            batch: 8,
            seq_len: 4096,
            period_ns: 3_000,
            steps: 4,
            scale: 1 << 17,
            granularity: 4096,
        },
        TenantSpec {
            name: "grok-b64".into(),
            model: ModelConfig::grok_1(),
            batch: 64,
            seq_len: 4096,
            period_ns: 5_000,
            steps: 3,
            scale: 1 << 17,
            granularity: 4096,
        },
        TenantSpec {
            name: "llama-b16".into(),
            model: ModelConfig::llama3_405b(),
            batch: 16,
            seq_len: 4096,
            period_ns: 4_000,
            steps: 3,
            scale: 1 << 18,
            granularity: 4096,
        },
    ];
    let mut mix = MultiTenantMixSource::from_specs(&specs);
    let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(4));
    let (done, stop) = sys.run_with_source(&mut mix, 50_000_000);
    assert!(mix.is_exhausted(), "mix must drain");
    let mut tenants = ClassedStats::with_classes(specs.iter().map(|s| s.name.clone()));
    for c in &done {
        tenants.record(mix.tenant_of(c.id).expect("mix id"), c);
    }
    println!("\nmulti-tenant mix on HBM4, {stop} ns:");
    for (label, s) in tenants.iter() {
        println!(
            "  {label:>12}: {:>5} requests, {:>9} B, {:7.2} GB/s, mean latency {:8.1} ns",
            s.completed,
            s.bytes,
            s.bandwidth_gbps(stop),
            s.mean_latency_ns()
        );
    }
}
