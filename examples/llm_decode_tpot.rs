//! Decode-stage TPOT of the three paper models on HBM4 vs RoMe
//! (the scenario behind Figure 12).
//!
//! Run with `cargo run --release --example llm_decode_tpot [--calibrated]`.
//! With `--calibrated` the effective-bandwidth and activation figures are
//! measured by the cycle-accurate controllers instead of using nominal
//! values.

use rome::llm::ModelConfig;
use rome::sim::{decode_tpot, AcceleratorSpec, Calibrator, MemoryModel};

fn main() {
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let accel = AcceleratorSpec::paper_default();
    let (hbm4, rome) = if calibrated {
        let mut cal = Calibrator::new();
        MemoryModel::calibrated_pair(&accel, &mut cal)
    } else {
        (
            MemoryModel::hbm4_baseline(&accel),
            MemoryModel::rome(&accel),
        )
    };

    println!(
        "decode TPOT at sequence length 8K ({} calibration)\n",
        if calibrated { "measured" } else { "nominal" }
    );
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12}",
        "model", "batch", "HBM4 (ms)", "RoMe (ms)", "reduction"
    );
    for model in ModelConfig::paper_models() {
        for batch in [16u64, 64, 256] {
            let h = decode_tpot(&model, batch, 8192, &accel, &hbm4);
            let r = decode_tpot(&model, batch, 8192, &accel, &rome);
            println!(
                "{:<14} {:>6} {:>12.2} {:>12.2} {:>11.1}%",
                model.name,
                batch,
                h.tpot_ms,
                r.tpot_ms,
                (1.0 - r.tpot_ms / h.tpot_ms) * 100.0
            );
        }
    }
    println!("\nMemory-bound share of HBM4 TPOT (Grok-1, batch 256):");
    let t = decode_tpot(&ModelConfig::grok_1(), 256, 8192, &accel, &hbm4);
    println!(
        "  memory {:.2} ms, compute {:.2} ms, communication {:.2} ms",
        t.memory_bound_ms, t.compute_bound_ms, t.communication_ms
    );
}
