//! The scenario server end-to-end: a mixed JSONL batch — an analytic figure
//! sweep, a closed-loop MoE window sweep, a multi-tenant closed loop, a
//! calibration point, a calibrated TPOT point, and a sharded multi-cube
//! streaming run — served by one warm [`rome::server::ScenarioEngine`], with
//! the warm-calibration reuse made visible by serving a second batch on the
//! same engine.
//!
//! Run with: `cargo run --release --example scenario_server`

use std::time::Instant;

use rome::server::{serve_jsonl, ResultPayload, ScenarioEngine, ScenarioSpec, WorkloadSpec};
use rome::sim::sweep::SweepKind;
use rome::sim::MemorySystemKind;
use rome::workload::MoeRoutingConfig;

fn mixed_batch() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::Sweep {
            name: "fig13-lbr-8k".into(),
            kind: SweepKind::Figure13,
            seq_len: 8192,
            calibrated: false,
        },
        ScenarioSpec::ClosedLoop {
            name: "moe-skew-windows".into(),
            system: MemorySystemKind::Rome,
            channels: 4,
            windows: vec![1, 4, 16],
            max_ns: 50_000_000,
            workload: WorkloadSpec::Moe(MoeRoutingConfig {
                experts: 32,
                top_k: 4,
                expert_bytes: 16 * 1024,
                layers: 2,
                tokens_per_step: 16,
                steps: 2,
                step_period_ns: 0,
                granularity: 4096,
                base: 0,
                zipf_exponent: 1.2,
                seed: 42,
            }),
        },
        ScenarioSpec::ClosedLoop {
            name: "two-tenant-mix".into(),
            system: MemorySystemKind::Hbm4,
            channels: 4,
            windows: vec![8],
            max_ns: 50_000_000,
            workload: WorkloadSpec::MultiTenant(vec![
                rome::server::TenantDecl {
                    name: "deepseek-b8".into(),
                    model: "deepseek-v3".into(),
                    batch: 8,
                    seq_len: 4096,
                    period_ns: 3_000,
                    steps: 3,
                    scale: 1 << 17,
                    granularity: 4096,
                },
                rome::server::TenantDecl {
                    name: "grok-b64".into(),
                    model: "grok-1".into(),
                    batch: 64,
                    seq_len: 4096,
                    period_ns: 5_000,
                    steps: 2,
                    scale: 1 << 17,
                    granularity: 4096,
                },
            ]),
        },
        ScenarioSpec::Calibration {
            name: "calibrate-hbm4".into(),
            system: MemorySystemKind::Hbm4,
        },
        ScenarioSpec::Tpot {
            name: "tpot-grok-b64-calibrated".into(),
            model: "grok-1".into(),
            batch: 64,
            seq_len: 8192,
            calibrated: true,
        },
        ScenarioSpec::MultiCube {
            name: "8-cube-stream".into(),
            system: MemorySystemKind::Rome,
            cubes: 8,
            channels_per_cube: 4,
            bytes_per_cube: 512 * 1024,
            max_ns: 50_000_000,
        },
    ]
}

fn main() {
    let specs = mixed_batch();
    let input: String = specs.iter().map(|s| s.to_json().emit() + "\n").collect();
    println!("batch in ({} specs):", specs.len());
    for line in input.lines() {
        let shown = if line.len() > 100 {
            format!("{}…", &line[..100])
        } else {
            line.to_string()
        };
        println!("  {shown}");
    }

    let engine = ScenarioEngine::new();
    let t0 = Instant::now();
    let results = engine.serve_batch(&specs);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("\nresults:");
    for result in &results {
        let result = result.as_ref().expect("batch is well-formed");
        match &result.payload {
            ResultPayload::Sweep(report) => {
                let rows = report.figure13.as_ref().expect("figure13 scenario");
                println!(
                    "  {:<26} {} LBR rows, last: attention {:.3} / ffn {:.3}",
                    result.name,
                    rows.len(),
                    rows.last().unwrap().lbr_attention,
                    rows.last().unwrap().lbr_ffn
                );
            }
            ResultPayload::ClosedLoop(points) => {
                let first = points.first().unwrap();
                let last = points.last().unwrap();
                println!(
                    "  {:<26} w{} {:.1} GB/s -> w{} {:.1} GB/s (mean latency {:.0} -> {:.0} ns)",
                    result.name,
                    first.window,
                    first.achieved_gbps,
                    last.window,
                    last.achieved_gbps,
                    first.mean_latency_ns,
                    last.mean_latency_ns
                );
            }
            ResultPayload::Calibration(c) => {
                println!(
                    "  {:<26} utilization {:.3}, {:.2} ACT/KiB, {:.0} ns mean read",
                    result.name,
                    c.bandwidth_utilization,
                    c.activates_per_kib,
                    c.mean_read_latency_ns
                );
            }
            ResultPayload::Tpot { hbm4, rome } => {
                println!(
                    "  {:<26} HBM4 {:.2} ms vs RoMe {:.2} ms ({:.1} % faster)",
                    result.name,
                    hbm4.tpot_ms,
                    rome.tpot_ms,
                    (1.0 - rome.tpot_ms / hbm4.tpot_ms) * 100.0
                );
            }
            ResultPayload::MultiCube(report) => {
                println!(
                    "  {:<26} {} cubes, merged {:.1} GB/s ({:.1} GB/s per cube)",
                    result.name,
                    report.per_cube.len(),
                    report.merged.achieved_bandwidth_gbps,
                    report.per_cube[0].achieved_bandwidth_gbps
                );
            }
            ResultPayload::QueueDepth(_) => unreachable!("not in this batch"),
        }
    }

    // The warm engine reuses the calibration across batches: serving the
    // calibration-dependent tail of the batch again is much cheaper.
    let warm_batch: Vec<ScenarioSpec> = specs
        .iter()
        .filter(|s| {
            matches!(
                s,
                ScenarioSpec::Calibration { .. } | ScenarioSpec::Tpot { .. }
            )
        })
        .cloned()
        .collect();
    let t0 = Instant::now();
    let _ = engine.serve_batch(&warm_batch);
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nwarm-cache reuse: first batch {cold_ms:.0} ms (includes calibration), \
         re-serving the calibrated scenarios {warm_ms:.1} ms"
    );

    // And the CLI path produces byte-identical JSONL from the same input.
    let via_cli = serve_jsonl(&engine, &input).expect("batch parses");
    let via_api: String = results
        .iter()
        .map(|r| r.as_ref().unwrap().to_json().emit() + "\n")
        .collect();
    assert_eq!(via_cli, via_api, "CLI and API must stay byte-identical");
    println!(
        "CLI path verified byte-identical ({} bytes of JSONL).",
        via_cli.len()
    );
}
