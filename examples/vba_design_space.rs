//! Explore the six-point virtual-bank design space of §IV-B: every
//! combination of the Fig. 7 bank-merge options and the Fig. 8 pseudo-channel
//! options, with its bandwidth, effective row size, and area cost.
//!
//! Run with `cargo run --release --example vba_design_space`.

use rome::core::controller::{RomeController, RomeControllerConfig};
use rome::core::VbaConfig;
use rome::hbm::Organization;
use rome::mc::workload;

fn main() {
    let org = Organization::hbm4();
    println!(
        "{:<56} {:>7} {:>6} {:>10} {:>9} {:>9}",
        "configuration", "row (B)", "VBAs", "BW (GB/s)", "area ovh", "DRAM mod"
    );
    let mut best = 0.0f64;
    let mut rows = Vec::new();
    for cfg in VbaConfig::design_space() {
        let controller_cfg = RomeControllerConfig::with_vba(cfg);
        let row_bytes = controller_cfg.row_bytes();
        let mut ctrl = RomeController::new(controller_cfg);
        let report = rome::core::simulate::run_to_completion(
            &mut ctrl,
            workload::streaming_reads(0, 4 * 1024 * 1024, row_bytes),
        );
        best = best.max(report.achieved_bandwidth_gbps);
        rows.push((cfg, row_bytes, report.achieved_bandwidth_gbps));
    }
    for (cfg, row_bytes, bw) in rows {
        println!(
            "{:<56} {:>7} {:>6} {:>10.1} {:>8.0}% {:>9}",
            cfg.label(),
            row_bytes,
            cfg.vbas_per_channel(&org),
            bw,
            cfg.area_overhead_fraction() * 100.0,
            if cfg.requires_dram_modification() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\nRoMe adopts Fig. 7(d) + Fig. 8(b): full bandwidth with no DRAM-array modification\n(the paper reports ≤ 3.6 % performance deviation across the design space)."
    );
}
