//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro, integer-range / tuple / `any::<bool>()`
//! strategies, `prop::sample::select`, `prop::collection::vec`, and the
//! `prop_assert*` macros. Instead of shrinking counterexamples, each test
//! simply runs `cases` deterministic random samples (seeded from the test
//! name), which preserves the coverage intent of the suite in an offline
//! build.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: deterministic RNG plus the case budget.
pub struct TestRunner {
    rng: ChaCha8Rng,
    cases: u32,
}

impl TestRunner {
    /// Create a runner whose RNG is seeded from the property name, so every
    /// property sees a stable but distinct sample sequence.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        TestRunner {
            rng: ChaCha8Rng::seed_from_u64(seed),
            cases: config.cases,
        }
    }

    /// The configured case count.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// A value generator (no shrinking in the stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Map the generated value through `f` (mirrors the real crate's
    /// `Strategy::prop_map`; like everything here, without shrinking).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for "any value of T" (`any::<T>()`).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical unconstrained strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> bool {
        rng.gen_bool_uniform()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The `prop::` namespace (sample / collection helpers).
pub mod prop {
    /// Strategies choosing among explicit values.
    pub mod sample {
        use super::super::*;

        /// Uniform choice from a fixed set of options.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut ChaCha8Rng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }
    }

    /// Strategies for collections.
    pub mod collection {
        use super::super::*;

        /// A vector of values from an element strategy, with length in a range.
        pub struct VecStrategy<S> {
            element: S,
            length: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
                let len = rng.gen_range(self.length.start..self.length.end);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `length`-element vectors of values drawn from `element`.
        pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
            assert!(
                length.start < length.end,
                "vec length range must be non-empty"
            );
            VecStrategy { element, length }
        }
    }
}

/// Assert inside a property (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `body` for `cases` deterministic random samples of its arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for _case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::sample(&($strategy), runner.rng());)*
                    $body
                }
            }
        )*
    };
    ( $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),*) $body)*
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(x in 0u64..100, pair in (0u8..4, 0u32..7)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4 && pair.1 < 7);
        }

        #[test]
        fn select_and_vec_strategies_work(
            choice in prop::sample::select(vec![32u64, 64, 256]),
            items in prop::collection::vec(0u8..3, 1..10)
        ) {
            prop_assert!([32u64, 64, 256].contains(&choice));
            prop_assert!(!items.is_empty() && items.len() < 10);
            prop_assert!(items.iter().all(|&i| i < 3));
        }

        #[test]
        fn assume_skips_cases(a in 0u8..4, b in 0u8..4) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn any_bool_samples_both_values(flag in any::<bool>()) {
            let _ = flag;
        }
    }
}
