//! Offline stand-in for `rand`.
//!
//! Provides exactly the trait surface this workspace uses: `RngCore`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open integer
//! ranges. Generators remain deterministic for a given seed, which is all the
//! workload and calibration code requires.

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires a non-empty range");
                let span = (high as u128) - (low as u128);
                // Modulo bias is at most span / 2^64, negligible for the
                // ranges used here (all far below 2^34).
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool_uniform(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        let v = rng.gen_range(0usize..3);
        assert!(v < 3);
    }
}
