//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the sibling
//! `serde_derive` stand-in so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged in an offline
//! build. See `vendor/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
