//! Offline stand-in for `rayon`.
//!
//! Implements the small parallel-iterator subset this workspace uses —
//! `Vec::into_par_iter()`, `map`, `for_each`, and `collect::<Vec<_>>()` —
//! with real parallelism on scoped OS threads. Work is split into one
//! contiguous chunk per available core, which matches how the workspace uses
//! it (coarse, similarly-sized work items: one per sweep point or channel).
//! Swapping the `[workspace.dependencies]` entry back to the registry rayon
//! restores the work-stealing scheduler without code changes.

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel operations.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over every element of `items` on scoped threads, returning the
/// results in the original order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// An eager parallel iterator: the element vector plus the operations run on
/// it when a consuming adapter is called.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Run `f` on every element in parallel, discarding results.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Collect the (already computed) elements.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The rayon-compatible prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_element() {
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (1..=100).collect();
        v.into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn mutable_references_can_be_processed() {
        let mut data = vec![1u64; 64];
        data.iter_mut()
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }
}
