//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 keystream generator behind the same
//! `ChaCha8Rng` name. The exact output differs from the upstream crate's
//! (the seed expansion is simpler), which is acceptable here: every consumer
//! in the workspace only relies on determinism-per-seed, alignment, and
//! uniformity, never on a pinned byte stream.

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha8-based random-number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    block: [u32; 16],
    /// Next unread word in `block`; 16 means the block is exhausted.
    word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.block = working;
        self.word = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit key with SplitMix64, the
        // same expansion rand's SeedableRng::seed_from_u64 uses.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.word] as u64;
        let hi = self.block[self.word + 1] as u64;
        self.word += 2;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0u64..8) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
