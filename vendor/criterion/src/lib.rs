//! Offline stand-in for `criterion`.
//!
//! Implements the builder/bench surface the bench suite uses
//! (`Criterion::default().sample_size(..).measurement_time(..)
//! .warm_up_time(..)`, `bench_function`, `criterion_group!`,
//! `criterion_main!`) as a plain wall-clock harness: warm up for the
//! configured time, then take `sample_size` samples and print min / mean /
//! max per-iteration times. No statistics beyond that — enough for the
//! `cargo bench` targets to build, run, and report comparable numbers.

use std::time::{Duration, Instant};

/// Benchmark harness configuration plus result sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the measured samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also calibrates the per-sample iteration count so that a
        // sample lasts roughly measurement_time / sample_size.
        let warm_up_start = Instant::now();
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            bencher.iterations = 1;
            f(&mut bencher);
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iterations = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        self
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Passed to the benchmark closure; runs the timed body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `body`, running it the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(body());
        }
        self.elapsed += start.elapsed();
    }
}

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
