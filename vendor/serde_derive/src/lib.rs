//! Offline stand-in for `serde_derive`.
//!
//! The container this repository builds in has no access to crates.io, so
//! the real serde cannot be vendored. Nothing in the workspace serializes at
//! runtime — the derives exist so the data types stay serialization-ready —
//! so the stand-in derives expand to nothing. Swapping the `[workspace.
//! dependencies]` entries back to the registry versions restores real serde
//! without touching any other code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
